(* Integer interval domain over 32-bit two's-complement values.

   Bounds are kept in native OCaml integers (63-bit), so intermediate
   arithmetic cannot overflow; any operation whose exact result range
   leaves the int32 range returns [top] — a sound model of wrap-around
   without tracking wrapped intervals. *)

type t = {
  lo : int;
  hi : int;
}

let int32_min = -2147483648
let int32_max = 2147483647

let top : t = { lo = int32_min; hi = int32_max }

let is_top (i : t) : bool = i.lo = int32_min && i.hi = int32_max

let make (lo : int) (hi : int) : t =
  if lo > hi then invalid_arg "Interval.make: empty";
  if lo < int32_min || hi > int32_max then top else { lo; hi }

let of_const (n : int32) : t =
  let v = Int32.to_int n in
  { lo = v; hi = v }

let of_int_const (v : int) : t = make v v

let is_const (i : t) : int option = if i.lo = i.hi then Some i.lo else None

let equal (a : t) (b : t) : bool = a.lo = b.lo && a.hi = b.hi

let contains (i : t) (v : int) : bool = i.lo <= v && v <= i.hi

let join (a : t) (b : t) : t = { lo = min a.lo b.lo; hi = max a.hi b.hi }

(* Meet: returns None on empty intersection (unreachable state). *)
let meet (a : t) (b : t) : t option =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

(* Standard widening: unstable bounds jump to the type extremes. *)
let widen (old_i : t) (new_i : t) : t =
  { lo = (if new_i.lo < old_i.lo then int32_min else old_i.lo);
    hi = (if new_i.hi > old_i.hi then int32_max else old_i.hi) }

let in_range (v : int) : bool = v >= int32_min && v <= int32_max

let add (a : t) (b : t) : t =
  let lo = a.lo + b.lo and hi = a.hi + b.hi in
  if in_range lo && in_range hi then { lo; hi } else top

let sub (a : t) (b : t) : t =
  let lo = a.lo - b.hi and hi = a.hi - b.lo in
  if in_range lo && in_range hi then { lo; hi } else top

let neg (a : t) : t =
  let lo = -a.hi and hi = -a.lo in
  if in_range lo && in_range hi then { lo; hi } else top

let mul (a : t) (b : t) : t =
  let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
  let lo = List.fold_left min max_int products in
  let hi = List.fold_left max min_int products in
  if in_range lo && in_range hi then { lo; hi } else top

let shift_left_const (a : t) (k : int) : t =
  if k < 0 || k > 31 then top else mul a (make (1 lsl k) (1 lsl k))

(* Bitwise AND with a non-negative constant mask bounds the result. *)
let and_const (a : t) (mask : int) : t =
  ignore a;
  if mask >= 0 then { lo = 0; hi = mask } else top

(* Refine the left operand assuming "left CMP right" holds. *)
let refine_cmp (c : Minic.Ast.comparison) (left : t) (right : t) : t option =
  match c with
  | Minic.Ast.Ceq -> meet left right
  | Minic.Ast.Cne ->
    (* only useful when right is a constant equal to a bound *)
    (match is_const right with
     | Some v when left.lo = v && left.lo < left.hi ->
       Some { left with lo = left.lo + 1 }
     | Some v when left.hi = v && left.lo < left.hi ->
       Some { left with hi = left.hi - 1 }
     | Some v when left.lo = v && left.lo = left.hi -> None
     | _ -> Some left)
  | Minic.Ast.Clt ->
    if left.lo > right.hi - 1 then None
    else Some { left with hi = min left.hi (right.hi - 1) }
  | Minic.Ast.Cle ->
    if left.lo > right.hi then None
    else Some { left with hi = min left.hi right.hi }
  | Minic.Ast.Cgt ->
    if left.hi < right.lo + 1 then None
    else Some { left with lo = max left.lo (right.lo + 1) }
  | Minic.Ast.Cge ->
    if left.hi < right.lo then None
    else Some { left with lo = max left.lo right.lo }

let pp (ppf : Format.formatter) (i : t) : unit =
  if is_top i then Format.pp_print_string ppf "T"
  else Format.fprintf ppf "[%d,%d]" i.lo i.hi

let to_string (i : t) : string = Format.asprintf "%a" pp i
