(* Control-flow reconstruction from binary-level assembly — the first
   phase of the aiT-style analyzer (paper Figure 1 of Gebhard et al.;
   our target paper relies on the same architecture: decode, loop/value
   analysis, cache/pipeline analysis, path analysis).

   The decoder splits a function's instruction stream into basic blocks
   at labels and after branches, and recovers the edge structure with
   the branch direction (taken / fall-through) that the pipeline
   analysis needs for edge costs. *)

module Asm = Target.Asm

type edge_kind =
  | Etaken        (* conditional or unconditional jump taken *)
  | Efall         (* fall-through *)

type block = {
  b_id : int;
  b_instrs : Asm.instr array; (* without the leading label *)
  b_addr : int;               (* address of the first instruction *)
  b_size : int;               (* bytes *)
  b_succs : (int * edge_kind) list;
  b_is_exit : bool;           (* ends in blr *)
}

type t = {
  c_blocks : block array;  (* indexed by block id *)
  c_entry : int;
  c_fname : string;
}

exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

(* Split [code] into basic blocks. Leaders: the first instruction, every
   label, every instruction following a branch. *)
let build (fname : string) (base_addr : int) (code : Asm.instr list) : t =
  let instrs = Array.of_list code in
  let n = Array.length instrs in
  if n = 0 then fail "empty function %s" fname;
  (* addresses *)
  let addr = Array.make (n + 1) base_addr in
  for i = 0 to n - 1 do
    addr.(i + 1) <- addr.(i) + Asm.instr_size instrs.(i)
  done;
  (* label -> instruction index *)
  let label_at = Hashtbl.create 61 in
  Array.iteri
    (fun i instr ->
       match instr with
       | Asm.Plabel l -> Hashtbl.replace label_at l i
       | _ -> ())
    instrs;
  let target (l : Asm.label) : int =
    match Hashtbl.find_opt label_at l with
    | Some i -> i
    | None -> fail "undefined label %d in %s" l fname
  in
  (* leaders *)
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun i instr ->
       match instr with
       | Asm.Plabel _ -> leader.(i) <- true
       | Asm.Pb l -> if i + 1 < n then leader.(i + 1) <- true;
         leader.(target l) <- true
       | Asm.Pbc (_, l) ->
         if i + 1 < n then leader.(i + 1) <- true;
         leader.(target l) <- true
       | Asm.Pblr -> if i + 1 < n then leader.(i + 1) <- true
       | _ -> ())
    instrs;
  (* assign block ids to leaders *)
  let block_of_index = Array.make n (-1) in
  let starts = ref [] in
  let nblocks = ref 0 in
  for i = 0 to n - 1 do
    if leader.(i) then begin
      starts := i :: !starts;
      incr nblocks
    end;
    block_of_index.(i) <- !nblocks - 1
  done;
  let starts = Array.of_list (List.rev !starts) in
  let nb = !nblocks in
  let block_end (b : int) : int =
    if b + 1 < nb then starts.(b + 1) else n
  in
  let blocks =
    Array.init nb (fun b ->
        let s = starts.(b) and e = block_end b in
        (* strip leading labels from the instruction view *)
        let body = ref [] in
        for i = e - 1 downto s do
          match instrs.(i) with
          | Asm.Plabel _ -> ()
          | instr -> body := instr :: !body
        done;
        let b_instrs = Array.of_list !body in
        let succs =
          if e = s then [ (b + 1, Efall) ] (* label-only block *)
          else
            match instrs.(e - 1) with
            | Asm.Pb l -> [ (block_of_index.(target l), Etaken) ]
            | Asm.Pbc (_, l) ->
              let fall =
                if e < n then [ (block_of_index.(e), Efall) ] else []
              in
              (block_of_index.(target l), Etaken) :: fall
            | Asm.Pblr -> []
            | _ -> if e < n then [ (block_of_index.(e), Efall) ] else []
        in
        let is_exit =
          e > s && (match instrs.(e - 1) with Asm.Pblr -> true | _ -> false)
        in
        { b_id = b;
          b_instrs;
          b_addr = addr.(s);
          b_size = addr.(e) - addr.(s);
          b_succs = succs;
          b_is_exit = is_exit })
  in
  { c_blocks = blocks; c_entry = 0; c_fname = fname }

let block (cfg : t) (b : int) : block = cfg.c_blocks.(b)

let num_blocks (cfg : t) : int = Array.length cfg.c_blocks

let successors (cfg : t) (b : int) : (int * edge_kind) list =
  cfg.c_blocks.(b).b_succs

(* Predecessor lists. *)
let predecessors (cfg : t) : int list array =
  let preds = Array.make (num_blocks cfg) [] in
  Array.iter
    (fun blk ->
       List.iter
         (fun (s, _) -> preds.(s) <- blk.b_id :: preds.(s))
         blk.b_succs)
    cfg.c_blocks;
  preds

(* Reachable blocks in reverse postorder. *)
let reverse_postorder (cfg : t) : int list =
  let visited = Array.make (num_blocks cfg) false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter (fun (s, _) -> dfs s) cfg.c_blocks.(b).b_succs;
      order := b :: !order
    end
  in
  dfs cfg.c_entry;
  !order

let exit_blocks (cfg : t) : int list =
  Array.to_list cfg.c_blocks
  |> List.filter (fun b -> b.b_is_exit)
  |> List.map (fun b -> b.b_id)

let pp (ppf : Format.formatter) (cfg : t) : unit =
  Format.fprintf ppf "@[<v>cfg %s (%d blocks)@," cfg.c_fname (num_blocks cfg);
  Array.iter
    (fun b ->
       Format.fprintf ppf "  B%d @%#x (%d bytes, %d instrs) -> %s%s@,"
         b.b_id b.b_addr b.b_size (Array.length b.b_instrs)
         (String.concat ", "
            (List.map
               (fun (s, k) ->
                  Printf.sprintf "B%d%s" s
                    (match k with Etaken -> "(t)" | Efall -> ""))
               b.b_succs))
         (if b.b_is_exit then " [exit]" else ""))
    cfg.c_blocks;
  Format.fprintf ppf "@]"
