(** Cache analysis for the split L1 caches: a conflict-capacity
    persistence classification (a set whose distinct-line footprint
    fits the associativity can never evict under LRU, so each of its
    lines misses at most once), refinable by the must-cache ageing
    analysis of {!Mustcache}. *)

type t = {
  ca_dextra : int array;   (** per-block per-execution data-miss cycles *)
  ca_iextra : int array;   (** per-block per-execution fetch-miss cycles *)
  ca_first_miss : int;     (** one-time cycles: persistent line fills *)
  ca_imprecise : bool;     (** an unresolved access degraded the analysis *)
  ca_dlines : int;
  ca_ilines : int;
  ca_daccesses : int list list array;
      (** per block, per data access in order: lines it may touch
          ([[]] = unresolved) *)
  ca_dpersistent : int -> bool;
}

exception Not_resolved

val data_access :
  Target.Layout.t -> Valueanalysis.state -> Target.Asm.instr ->
  (int * int) option
(** Byte range of the instruction's data access, resolved through the
    value analysis; [None] when the instruction accesses no data.
    @raise Not_resolved on statically unknown addresses. *)

val analyze : Cfg.t -> Valueanalysis.result -> Target.Layout.t -> t

val refine : t -> (int -> bool list) -> t
(** Drop the per-access penalty of accesses the given per-block
    ALWAYS-HIT classification proves to be hits. *)
