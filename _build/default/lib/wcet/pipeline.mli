(** Pipeline analysis: per-basic-block execution-time bounds using the
    exact timing model of the simulator ({!Target.Timing.static_costs})
    plus the cache classification's per-execution penalties; branch
    direction costs are charged per edge by {!Ipet}. *)

type t = {
  pl_block_cost : int array;        (** per-execution cycles, no branches *)
  pl_edge_cost : (int * int) array; (** (taken, fall-through) extras *)
}

val analyze : Cfg.t -> Cacheanalysis.t -> t
val edge_cost : t -> int -> Cfg.edge_kind -> int
