(* Pipeline analysis: per-basic-block execution-time bounds.

   Uses the exact same dual-issue pairing and latency model as the
   simulator ([Target.Timing.static_costs]) — the analyzer and the
   machine agree on the pipeline by construction, the abstraction only
   enters through the cache classification ([Cacheanalysis]) and the
   branch direction (charged per edge by [Ipet]). *)

module Asm = Target.Asm

type t = {
  pl_block_cost : int array;          (* per-execution cycles, no branches *)
  pl_edge_cost : (int * int) array;   (* (taken, fallthrough) extra *)
}

let analyze (cfg : Cfg.t) (cache : Cacheanalysis.t) : t =
  let nb = Cfg.num_blocks cfg in
  let block_cost = Array.make nb 0 in
  let edge_cost = Array.make nb (0, 0) in
  for b = 0 to nb - 1 do
    let blk = Cfg.block cfg b in
    let costs = Target.Timing.static_costs blk.Cfg.b_instrs in
    let base = Array.fold_left ( + ) 0 costs in
    block_cost.(b) <-
      base + cache.Cacheanalysis.ca_dextra.(b) + cache.Cacheanalysis.ca_iextra.(b);
    (* branch direction costs *)
    let n = Array.length blk.Cfg.b_instrs in
    let taken = Target.Timing.branch_cost ~taken:true in
    let fall = Target.Timing.branch_cost ~taken:false in
    edge_cost.(b) <-
      (if n = 0 then (0, 0)
       else
         match blk.Cfg.b_instrs.(n - 1) with
         | Asm.Pbc _ -> (taken, fall)
         | Asm.Pb _ | Asm.Pblr -> (taken, taken)
         | _ -> (0, 0))
  done;
  { pl_block_cost = block_cost; pl_edge_cost = edge_cost }

(* Cost charged on an edge leaving block [b]. *)
let edge_cost (t : t) (b : int) (kind : Cfg.edge_kind) : int =
  let taken, fall = t.pl_edge_cost.(b) in
  match kind with
  | Cfg.Etaken -> taken
  | Cfg.Efall -> fall
