(** Analyzer driver: the full aiT-like phase sequence — decode/CFG
    reconstruction, dominators and natural loops, interval value
    analysis, loop bounds (automatic counter analysis + annotations),
    cache analysis (capacity persistence refined by the must-cache
    ageing analysis), pipeline analysis sharing the simulator's timing
    model, and IPET path analysis. *)

exception Error of string

val analyze :
  ?fname:string -> Target.Asm.program -> Target.Layout.t -> Report.t
(** Analyze one entry point.
    @raise Error when no sound bound can be produced (irreducible
    control flow, a loop without derivable bound or annotation, an
    infeasible path program) — the analyzer refuses rather than
    under-estimate. *)

val analyze_program :
  Target.Asm.program -> Target.Layout.t -> (string * Report.t) list
(** Per-function analysis (the per-node WCET of the paper's Figure 2). *)
