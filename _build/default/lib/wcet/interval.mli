(** Integer interval domain over 32-bit two's-complement values; any
    operation whose exact result range leaves the int32 range returns
    {!top} — a sound model of wrap-around. Bounds live in native
    (63-bit) integers, so intermediate arithmetic cannot overflow. *)

type t = {
  lo : int;
  hi : int;
}

val int32_min : int
val int32_max : int

val top : t
val is_top : t -> bool

val make : int -> int -> t
(** Clamps to {!top} outside the int32 range.
    @raise Invalid_argument when [lo > hi]. *)

val of_const : int32 -> t
val of_int_const : int -> t
val is_const : t -> int option
val equal : t -> t -> bool
val contains : t -> int -> bool

val join : t -> t -> t
val meet : t -> t -> t option
(** [None] on empty intersection (unreachable state). *)

val widen : t -> t -> t
(** Standard widening: unstable bounds jump to the type extremes. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val shift_left_const : t -> int -> t
val and_const : t -> int -> t

val refine_cmp : Minic.Ast.comparison -> t -> t -> t option
(** Refine the left operand assuming "left CMP right" holds; [None]
    when the comparison cannot hold. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val in_range : int -> bool
(** Does the value fit in the int32 range? *)
