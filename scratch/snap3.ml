(* throwaway: run_stream sanity *)

let mk_producer shards =
  let arr = Array.of_list shards in
  fun k -> if k < Array.length arr then Some arr.(k) else None

let seq_expect shards =
  List.concat_map Array.to_list shards |> List.map (fun t -> t ())

let check name shards jobs lookahead =
  let tasks_of l = List.map (Array.map (fun v () -> v * v + 1)) l in
  let shards_t = tasks_of shards in
  let expect = seq_expect shards_t in
  let got =
    Fcstack.Par.run_stream ~jobs ~lookahead
      ~producer:(mk_producer shards_t)
      ~consumer:(fun acc i v -> (i, v) :: acc) ~init:[] ()
    |> List.rev |> List.map snd
  in
  let idx_ok =
    Fcstack.Par.run_stream ~jobs ~lookahead
      ~producer:(mk_producer shards_t)
      ~consumer:(fun acc i _ -> (match acc with
          | last :: _ -> assert (i = last + 1)
          | [] -> assert (i = 0)); i :: acc)
      ~init:[] ()
  in
  ignore idx_ok;
  if got = expect then Printf.printf "OK  %s\n" name
  else (Printf.printf "FAIL %s: got %d results, want %d\n" name
          (List.length got) (List.length expect); exit 1)

let () =
  let s sz lo = Array.init sz (fun i -> lo + i) in
  check "basic j4" [ s 5 0; s 3 5; s 7 8; s 1 15 ] 4 1;
  check "empty shards j4" [ s 0 0; s 3 0; s 0 0; s 0 0; s 2 3; s 0 0 ] 4 1;
  check "all empty j4" [ s 0 0; s 0 0 ] 4 1;
  check "no shards j4" [] 4 1;
  check "seq" [ s 5 0; s 3 5 ] 1 1;
  check "lookahead0" [ s 4 0; s 4 4; s 4 8; s 4 12 ] 2 0;
  check "many small shards j4" (List.init 50 (fun k -> s 3 (3 * k))) 4 2;
  (* exception: smallest global index wins, prefix < index consumed *)
  let boom = Failure "boom7" in
  let tasks =
    List.init 4 (fun k ->
        Array.init 5 (fun i ->
            let g = (5 * k) + i in
            if g = 7 then (fun () -> raise boom) else (fun () -> g)))
  in
  let seen = ref [] in
  (try
     ignore
       (Fcstack.Par.run_stream ~jobs:4 ~lookahead:1
          ~producer:(mk_producer tasks)
          ~consumer:(fun () i _ -> seen := i :: !seen) ~init:() ());
     Printf.printf "FAIL exn: no exception\n"; exit 1
   with Failure m ->
     assert (m = "boom7");
     let seen = List.rev !seen in
     assert (List.for_all (fun i -> i < 7) seen);
     (* full prefix 0..6 must be consumed *)
     assert (seen = [0;1;2;3;4;5;6]);
     Printf.printf "OK  exn smallest-index, prefix consumed\n");
  (* producer exception *)
  let prod k =
    if k < 2 then Some (Array.init 3 (fun i -> (fun () -> (3*k)+i)))
    else raise (Failure "prodboom")
  in
  (try
     ignore
       (Fcstack.Par.run_stream ~jobs:4 ~lookahead:1 ~producer:prod
          ~consumer:(fun acc _ v -> v :: acc) ~init:[] ());
     Printf.printf "FAIL prod exn: no exception\n"; exit 1
   with Failure m -> assert (m = "prodboom");
     Printf.printf "OK  producer exn\n");
  (* window bound: max resident shards <= jobs + lookahead *)
  let resident = Atomic.make 0 and maxres = Atomic.make 0 in
  let jobs = 3 and lookahead = 1 in
  let prod k =
    if k >= 40 then None
    else begin
      let r = Atomic.fetch_and_add resident 1 + 1 in
      let rec bump () =
        let m = Atomic.get maxres in
        if r > m && not (Atomic.compare_and_set maxres m r) then bump ()
      in
      bump ();
      Some (Array.init 4 (fun i -> (fun () -> Unix.sleepf 0.0005; (4*k)+i)))
    end
  in
  let n =
    Fcstack.Par.run_stream ~jobs ~lookahead ~producer:prod
      ~consumer:(fun acc i v ->
          assert (i = v); if (i+1) mod 4 = 0 then Atomic.decr resident;
          acc + 1)
      ~init:0 ()
  in
  assert (n = 160);
  Printf.printf "OK  window bound: max resident %d <= %d\n"
    (Atomic.get maxres) (jobs + lookahead);
  assert (Atomic.get maxres <= jobs + lookahead)
