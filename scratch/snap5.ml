(* throwaway: per-phase timing of the analyzer on one function *)
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let profile =
    match Sys.argv.(1) with
    | "medium" -> Scade.Workload.medium_node
    | "small" -> Scade.Workload.small_node
    | _ -> Scade.Workload.large_node
  in
  let node = Scade.Workload.generate_node ~profile ~seed:2026 "t" in
  let src = Scade.Acg.generate node in
  let b = Fcstack.Chain.build Fcstack.Chain.Cdefault_o0 src in
  let asm = b.Fcstack.Chain.b_asm in
  let lay = b.Fcstack.Chain.b_layout in
  let fname = asm.Target.Asm.pr_main in
  let f = Option.get (Target.Asm.find_func asm fname) in
  let base = Hashtbl.find lay.Target.Layout.lay_code fname in
  Printf.printf "main %s: %d instrs\n%!" fname (List.length f.Target.Asm.fn_code);
  let fuel = Wcet.Fuel.default in
  let cfg, t = time (fun () -> Wcet.Cfg.build fname base f.Target.Asm.fn_code) in
  Printf.printf "  decode    %8.1fms  (%d blocks)\n%!" (t *. 1000.) (Wcet.Cfg.num_blocks cfg);
  let dom, t = time (fun () -> Wcet.Dom.compute cfg) in
  Printf.printf "  dom       %8.1fms\n%!" (t *. 1000.);
  let loops, t = time (fun () -> Wcet.Loops.compute cfg dom) in
  Printf.printf "  loops     %8.1fms\n%!" (t *. 1000.);
  let va, t = time (fun () -> Wcet.Valueanalysis.analyze ~fuel:fuel.Wcet.Fuel.fl_widen cfg) in
  Printf.printf "  value     %8.1fms\n%!" (t *. 1000.);
  let bounds, t = time (fun () ->
      match Wcet.Boundanalysis.analyze cfg dom loops va with
      | Ok b -> b | Error _ -> failwith "bounds") in
  Printf.printf "  bounds    %8.1fms\n%!" (t *. 1000.);
  let cls, t = time (fun () -> Wcet.Cacheanalysis.analyze cfg va lay) in
  Printf.printf "  cache     %8.1fms\n%!" (t *. 1000.);
  let must, t = time (fun () -> Wcet.Mustcache.analyze ~fuel:fuel.Wcet.Fuel.fl_widen cfg va lay) in
  Printf.printf "  mustcache %8.1fms\n%!" (t *. 1000.);
  let cls, t = time (fun () -> Wcet.Cacheanalysis.refine cls (Wcet.Mustcache.block_hits must)) in
  Printf.printf "  refine    %8.1fms\n%!" (t *. 1000.);
  let pl, t = time (fun () -> Wcet.Pipeline.analyze cfg cls) in
  Printf.printf "  pipeline  %8.1fms\n%!" (t *. 1000.);
  let res, t = time (fun () -> Wcet.Ipet.compute ~fuel cfg pl cls loops bounds) in
  Printf.printf "  ipet      %8.1fms  (wcet %d)\n%!" (t *. 1000.) res.Wcet.Ipet.ipet_wcet

(* where does mustcache time go? *)
let () =
  if Array.length Sys.argv > 2 then begin
    let profile = Scade.Workload.large_node in
    let node = Scade.Workload.generate_node ~profile ~seed:2026 "t" in
    let src = Scade.Acg.generate node in
    let b = Fcstack.Chain.build Fcstack.Chain.Cdefault_o0 src in
    let asm = b.Fcstack.Chain.b_asm in
    let lay = b.Fcstack.Chain.b_layout in
    let fname = asm.Target.Asm.pr_main in
    let f = Option.get (Target.Asm.find_func asm fname) in
    let base = Hashtbl.find lay.Target.Layout.lay_code fname in
    let cfg = Wcet.Cfg.build fname base f.Target.Asm.fn_code in
    let va = Wcet.Valueanalysis.analyze ~fuel:Wcet.Fuel.default.Wcet.Fuel.fl_widen cfg in
    let n = Wcet.Cfg.num_blocks cfg in
    let _, t = time (fun () ->
        Array.init n (fun bi ->
            let blk = Wcet.Cfg.block cfg bi in
            match va.Wcet.Valueanalysis.r_entry_states.(bi) with
            | None -> 0
            | Some st0 ->
              let st = ref st0 and k = ref 0 in
              Array.iter (fun i ->
                  (try (match Wcet.Cacheanalysis.data_access lay !st i with
                     | Some _ -> incr k | None -> ())
                   with Wcet.Cacheanalysis.Not_resolved -> incr k);
                  st := Wcet.Valueanalysis.transfer !st i)
                blk.Wcet.Cfg.b_instrs;
              !k)) in
    Printf.printf "  accs-precompute %8.1fms\n%!" (t *. 1000.)
  end
