let () =
  match Sys.argv with
  | [| _; "gen"; n |] ->
    let t0 = Unix.gettimeofday () in
    let w = Scade.Workload.flight_program ~nodes:(int_of_string n) ~seed:2026 in
    Printf.printf "gen %s nodes: %.2fs (%d instances total)\n" n
      (Unix.gettimeofday () -. t0)
      (List.fold_left (fun a ((nd : Scade.Symbol.node), _) ->
           a + List.length nd.Scade.Symbol.n_instances) 0 w)
  | _ ->
    List.iter
      (fun (nodes, seed) ->
         let w = Scade.Workload.flight_program ~nodes ~seed in
         let buf = Buffer.create (1 lsl 16) in
         List.iter
           (fun ((n : Scade.Symbol.node), src) ->
              Buffer.add_string buf n.Scade.Symbol.n_name;
              Buffer.add_string buf (Minic.Pp.program_to_string src))
           w;
         Printf.printf "%d/%d %s\n" nodes seed
           (Digest.to_hex (Digest.string (Buffer.contents buf))))
      [ (60, 2026); (30, 2026); (14, 2026); (8, 7); (25, 123); (100, 2026) ]
