(* throwaway: where does per-node time go? *)
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let profiles =
    [ ("io", Scade.Workload.io_node); ("small", Scade.Workload.small_node);
      ("medium", Scade.Workload.medium_node);
      ("large", Scade.Workload.large_node) ]
  in
  List.iter
    (fun (name, p) ->
       let node = Scade.Workload.generate_node ~profile:p ~seed:2026 "t" in
       let src = Scade.Acg.generate node in
       let b, t_build = time (fun () -> Fcstack.Chain.build Fcstack.Chain.Cdefault_o0 src) in
       let _, t_wcet = time (fun () -> Fcstack.Chain.wcet b) in
       let instrs = Target.Asm.program_size b.Fcstack.Chain.b_asm in
       Printf.printf "%-8s instrs %6d  build %7.1fms  wcet %7.1fms\n%!"
         name instrs (t_build *. 1000.) (t_wcet *. 1000.))
    profiles
