let () =
  let ok = ref true in
  List.iter
    (fun (nodes, seed, size) ->
       let mono = Scade.Workload.flight_program ~nodes ~seed in
       let plan = Scade.Workload.shard_plan ~shard_size:size ~nodes ~seed () in
       let cat =
         List.concat
           (List.init (Scade.Workload.shard_count plan) (fun k ->
                Array.to_list (Scade.Workload.generate_shard plan k)))
       in
       if cat <> mono then begin
         ok := false;
         Printf.printf "MISMATCH nodes=%d seed=%d size=%d\n" nodes seed size
       end)
    [ (25, 2026, 7); (25, 2026, 1); (25, 2026, 25); (25, 2026, 300);
      (0, 5, 4); (10, 123, 3); (64, 9, 16) ];
  print_endline (if !ok then "shards OK" else "shards BAD")
