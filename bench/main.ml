(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md, per-experiment index) and adds
   Bechamel micro-benchmarks of the toolchain itself.

   Usage:
     bench/main.exe                 run everything (default workload)
     bench/main.exe -e table1       only Table 1
     bench/main.exe -e figure2      only Figure 2
     bench/main.exe -e listings     only Listings 1/2
     bench/main.exe -e annot       only the annotation-flow demo
     bench/main.exe -e ablation    only the ablations
     bench/main.exe -e overestimation   bound tightness study
     bench/main.exe -e micro       only the Bechamel micro-benchmarks
     bench/main.exe -n 120         workload size (default 60)
     bench/main.exe -j 4           per-node parallelism (default 1)
     bench/main.exe --engine omt   WCET path engine (ipet|omt|both)
     bench/main.exe --no-cache     disable the shared WCET-analysis cache
     bench/main.exe --cache-dir D  persist the cache across runs
     bench/main.exe --cache-gc-mb M  LRU-bound the persistent cache

   With -j > 1 every workload-driven experiment is measured both
   sequentially and in parallel; the wall-clock comparison goes to
   stderr so the tables on stdout stay byte-identical to a -j 1 run.

   All flags fold into one Fcstack.Toolchain.config (the cache trio and
   -j are the shared Fcstack.Cliopts terms, same surface as fcc/aitw).
   One content-addressed WCET-analysis cache (Wcet.Memo) is shared by
   all experiments and all domains of the process — and, with
   --cache-dir, across process runs; the sequential reference leg of a
   -j comparison deliberately runs uncached, so the stderr line is a
   seq-uncached vs parallel-cached wall-clock comparison.
   Hit/miss/phase accounting also goes to stderr (Report.pp_stats);
   stdout tables are byte-identical with and without the cache — cold,
   warm or --no-cache, the cache changes wall clock, never results
   (CI cmp-enforces all three). *)

let ppf = Format.std_formatter

let sep (title : string) : unit =
  Format.fprintf ppf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let run_micro () : unit =
  sep "Micro-benchmarks (Bechamel): toolchain phases on one medium node";
  let node =
    Scade.Workload.generate_node ~profile:Scade.Workload.medium_node ~seed:42
      "bench"
  in
  let src = Scade.Acg.generate node in
  let vcomp_asm = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let tests =
    [ Bechamel.Test.make ~name:"acg"
        (Bechamel.Staged.stage (fun () -> ignore (Scade.Acg.generate node)));
      Bechamel.Test.make ~name:"compile-default-O0"
        (Bechamel.Staged.stage (fun () ->
             ignore (Cotsc.Driver.compile ~level:Cotsc.Driver.Onone src)));
      Bechamel.Test.make ~name:"compile-default-O2"
        (Bechamel.Staged.stage (fun () ->
             ignore (Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull src)));
      Bechamel.Test.make ~name:"compile-vcomp"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Vcomp.Driver.compile ~options:Vcomp.Driver.no_validation src)));
      Bechamel.Test.make ~name:"compile-vcomp-validated"
        (Bechamel.Staged.stage (fun () -> ignore (Vcomp.Driver.compile src)));
      Bechamel.Test.make ~name:"wcet-analysis"
        (Bechamel.Staged.stage (fun () ->
             ignore (Fcstack.Chain.wcet vcomp_asm)));
      Bechamel.Test.make ~name:"simulate-one-cycle"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Fcstack.Chain.simulate vcomp_asm
                  (Minic.Interp.seeded_world ~seed:1 ())))) ]
  in
  let benchmark test =
    let open Bechamel in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
       let results = benchmark test in
       Hashtbl.iter
         (fun name ols ->
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ t ] -> Format.fprintf ppf "  %-28s %12.1f ns/run@." name t
            | Some _ | None -> Format.fprintf ppf "  %-28s (no estimate)@." name)
         results)
    tests

(* Wall-clock of one run; with -j > 1, run sequentially first and then
   in parallel, report the comparison on stderr and check the results
   agree byte-for-byte (the determinism contract of Fcstack.Par and
   the cached-equals-uncached contract of Wcet.Memo: the sequential
   reference leg runs without the cache). *)
let timed (f : unit -> 'a) : 'a * float =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_maybe_parallel (name : string) (config : Fcstack.Toolchain.config)
    (run : config:Fcstack.Toolchain.config -> 'a) : 'a =
  let { Fcstack.Toolchain.jobs; cache; _ } = config in
  if jobs <= 1 then run ~config
  else begin
    let seq_config = { config with Fcstack.Toolchain.jobs = 1; cache = None } in
    let seq, t_seq = timed (fun () -> run ~config:seq_config) in
    let all_hits (st : Wcet.Report.analysis_stats) : int =
      st.Wcet.Report.st_hits + st.Wcet.Report.st_disk_hits
    in
    let hits0 =
      match cache with None -> 0 | Some c -> all_hits (Wcet.Memo.stats c)
    in
    let par, t_par = timed (fun () -> run ~config) in
    let cache_note =
      match cache with
      | None -> "uncached"
      | Some c ->
        let st = Wcet.Memo.stats c in
        Printf.sprintf "cached: +%d hits, %.1f%% cumulative hit rate"
          (all_hits st - hits0)
          (Wcet.Report.hit_rate st)
    in
    Printf.eprintf
      "%s: sequential uncached %.2fs, parallel (%d jobs, %s) %.2fs, \
       speedup %.2fx, results %s\n%!"
      name t_seq jobs cache_note t_par
      (if t_par > 0.0 then t_seq /. t_par else 0.0)
      (if seq = par then "identical" else "DIFFERENT (determinism bug!)");
    par
  end

(* Hidden chaos mode (--chaos): run the deterministic fault-injection
   harness (Fcstack.Chaos) instead of the experiments. Everything goes
   to stderr; exit 0 when every containment check held, 1 otherwise.
   CI drives this with a pinned seed. *)
let run_chaos (seed : int) (engine : Wcet.Report.engine) : int =
  let r = Fcstack.Chaos.run ~seed ~engine () in
  Format.eprintf "%a@." Fcstack.Chaos.print_report r;
  if r.Fcstack.Chaos.ch_problems = [] then 0 else 1

let run_bench (experiment : string) (nodes : int)
    (passes : Vcomp.Pass.options) (engine : Wcet.Report.engine) (jobs : int)
    (chaos : bool) (chaos_seed : int)
    (copts : Fcstack.Cliopts.cache_opts) : int =
  if chaos then run_chaos chaos_seed engine
  else begin
  let want (e : string) : bool = experiment = "all" || experiment = e in
  (* one shared analysis cache for the whole process: experiments and
     domains all feed it (content-addressed, so sharing across compiler
     configurations — and, when persistent, across runs — is sound) *)
  let config = Fcstack.Cliopts.config_of_opts ~jobs ~passes ~engine copts in
  let workload =
    lazy
      (let wr =
         run_maybe_parallel "workload" config (fun ~config ->
             Fcstack.Experiments.run_workload ~nodes ~config ())
       in
       (* per-node failures: stderr-only summary, tables show survivors *)
       Fcstack.Diag.print_summary ~total:nodes
         wr.Fcstack.Experiments.wr_diags;
       (* per-pass middle-end accounting: stderr-only, like the cache
          stats below — stdout tables stay byte-identical across -O *)
       Format.eprintf "%a@?" Vcomp.Pass.pp_stats
         wr.Fcstack.Experiments.wr_pass_stats;
       wr)
  in
  if experiment = "gvnlicm" then begin
    (* pure JSON on stdout (no separator banner): the published
       BENCH_gvn_licm.json is exactly this output *)
    Fcstack.Experiments.print_gvn_licm_json ppf ~nodes:(min 30 nodes) ~config
      ();
    Format.pp_print_flush ppf ();
    Fcstack.Cliopts.report_stats ~always:true config;
    Fcstack.Cliopts.finalize config;
    0
  end
  else if experiment = "engines" then begin
    (* pure JSON on stdout: the published BENCH_engines.json. Runs
       under --engine both regardless of the flag, so the driver
       cross-checks omt <= ipet on every analysis. *)
    Fcstack.Experiments.print_engines_json ppf ~nodes:(min 30 nodes) ~config
      ();
    Format.pp_print_flush ppf ();
    Fcstack.Cliopts.report_stats ~always:true config;
    Fcstack.Cliopts.finalize config;
    0
  end
  else begin
  if want "listings" then begin
    sep "Experiment listing-1-2";
    Fcstack.Experiments.print_listings ppf
  end;
  if want "table1" then begin
    sep "Experiment table-1";
    Fcstack.Experiments.print_table1 ppf (Lazy.force workload);
    Format.fprintf ppf "@."
  end;
  if want "figure2" then begin
    sep "Experiment figure-2";
    Fcstack.Experiments.print_figure2 ppf (Lazy.force workload);
    Format.fprintf ppf "@."
  end;
  if want "annot" then begin
    sep "Experiment annot-flow";
    Fcstack.Experiments.print_annot_demo ppf;
    Format.fprintf ppf "@."
  end;
  if want "ablation" then begin
    sep "Experiment ablation";
    Fcstack.Experiments.print_ablation ppf ~nodes:(min 30 nodes) ~config ();
    Format.fprintf ppf "@."
  end;
  if want "overestimation" then begin
    sep "Experiment overestimation";
    Fcstack.Experiments.print_overestimation ppf ~nodes:(min 20 nodes) ~config
      ();
    Format.fprintf ppf "@."
  end;
  if want "micro" then run_micro ();
  Format.pp_print_flush ppf ();
  (* cache accounting to stderr only: stdout tables stay byte-identical
     with and without the cache (CI cmp-enforces this) *)
  Fcstack.Cliopts.report_stats ~always:true config;
  Fcstack.Cliopts.finalize config;
  0
  end
  end

open Cmdliner

let experiment_arg =
  Arg.(value & opt string "all"
       & info [ "e"; "experiment" ] ~docv:"EXPERIMENT"
           ~doc:"Run only $(docv): listings, table1, figure2, annot, \
                 ablation, overestimation, micro, gvnlicm (pure-JSON \
                 GVN/LICM deltas; never part of $(b,all)), or engines \
                 (pure-JSON IPET-vs-OMT differential study; never part \
                 of $(b,all)) (default: all).")

let nodes_arg =
  Arg.(value & opt int 60
       & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Workload size (default 60).")

let jobs_arg =
  Fcstack.Cliopts.jobs_term
    ~doc:"Per-node parallelism; with $(docv) > 1 every workload-driven \
          experiment is also timed sequentially and the comparison goes \
          to stderr (stdout tables stay byte-identical)."

(* maintenance flags, hidden from the man page *)
let chaos_arg =
  Arg.(value & flag
       & info [ "chaos" ] ~docs:Manpage.s_none
           ~doc:"Run the deterministic fault-injection harness instead \
                 of the experiments (report on stderr; exit 1 on any \
                 containment violation).")

let chaos_seed_arg =
  Arg.(value & opt int 20260806
       & info [ "chaos-seed" ] ~docv:"SEED" ~docs:Manpage.s_none
           ~doc:"Seed for --chaos fault selection.")

let cmd =
  let doc = "regenerate the paper's evaluation tables and figures" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const run_bench $ experiment_arg $ nodes_arg
      $ Fcstack.Cliopts.passes_term $ Fcstack.Cliopts.engine_term $ jobs_arg
      $ chaos_arg $ chaos_seed_arg $ Fcstack.Cliopts.cache_term)

let () = exit (Cmd.eval' cmd)
