(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md, per-experiment index) and adds
   Bechamel micro-benchmarks of the toolchain itself.

   Usage:
     bench/main.exe                 run everything (default workload)
     bench/main.exe -e table1       only Table 1
     bench/main.exe -e figure2      only Figure 2
     bench/main.exe -e listings     only Listings 1/2
     bench/main.exe -e annot       only the annotation-flow demo
     bench/main.exe -e ablation    only the ablations
     bench/main.exe -e overestimation   bound tightness study
     bench/main.exe -e micro       only the Bechamel micro-benchmarks
     bench/main.exe -n 120         workload size (default 60)
     bench/main.exe -j 4           per-node parallelism (default 1)
     bench/main.exe --engine omt   WCET path engine (ipet|omt|both)
     bench/main.exe --no-cache     disable the shared WCET-analysis cache
     bench/main.exe --cache-dir D  persist the cache across runs
     bench/main.exe --cache-gc-mb M  LRU-bound the persistent cache

   With -j > 1 every workload-driven experiment is measured both
   sequentially and in parallel; the wall-clock comparison goes to
   stderr so the tables on stdout stay byte-identical to a -j 1 run.

   All flags fold into one Fcstack.Toolchain.config (the cache trio and
   -j are the shared Fcstack.Cliopts terms, same surface as fcc/aitw).
   One content-addressed WCET-analysis cache (Wcet.Memo) is shared by
   all experiments and all domains of the process — and, with
   --cache-dir, across process runs; the sequential reference leg of a
   -j comparison deliberately runs uncached, so the stderr line is a
   seq-uncached vs parallel-cached wall-clock comparison.
   Hit/miss/phase accounting also goes to stderr (Report.pp_stats);
   stdout tables are byte-identical with and without the cache — cold,
   warm or --no-cache, the cache changes wall clock, never results
   (CI cmp-enforces all three). *)

let ppf = Format.std_formatter

let sep (title : string) : unit =
  Format.fprintf ppf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let run_micro () : unit =
  sep "Micro-benchmarks (Bechamel): toolchain phases on one medium node";
  let node =
    Scade.Workload.generate_node ~profile:Scade.Workload.medium_node ~seed:42
      "bench"
  in
  let src = Scade.Acg.generate node in
  let vcomp_asm = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let tests =
    [ Bechamel.Test.make ~name:"acg"
        (Bechamel.Staged.stage (fun () -> ignore (Scade.Acg.generate node)));
      Bechamel.Test.make ~name:"compile-default-O0"
        (Bechamel.Staged.stage (fun () ->
             ignore (Cotsc.Driver.compile ~level:Cotsc.Driver.Onone src)));
      Bechamel.Test.make ~name:"compile-default-O2"
        (Bechamel.Staged.stage (fun () ->
             ignore (Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull src)));
      Bechamel.Test.make ~name:"compile-vcomp"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Vcomp.Driver.compile ~options:Vcomp.Driver.no_validation src)));
      Bechamel.Test.make ~name:"compile-vcomp-validated"
        (Bechamel.Staged.stage (fun () -> ignore (Vcomp.Driver.compile src)));
      Bechamel.Test.make ~name:"wcet-analysis"
        (Bechamel.Staged.stage (fun () ->
             ignore (Fcstack.Chain.wcet vcomp_asm)));
      Bechamel.Test.make ~name:"simulate-one-cycle"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Fcstack.Chain.simulate vcomp_asm
                  (Minic.Interp.seeded_world ~seed:1 ())))) ]
  in
  let benchmark test =
    let open Bechamel in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
       let results = benchmark test in
       Hashtbl.iter
         (fun name ols ->
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ t ] -> Format.fprintf ppf "  %-28s %12.1f ns/run@." name t
            | Some _ | None -> Format.fprintf ppf "  %-28s (no estimate)@." name)
         results)
    tests

(* Wall-clock of one run; with -j > 1, run sequentially first and then
   in parallel, report the comparison on stderr and check the results
   agree byte-for-byte (the determinism contract of Fcstack.Par and
   the cached-equals-uncached contract of Wcet.Memo: the sequential
   reference leg runs without the cache). *)
let timed (f : unit -> 'a) : 'a * float =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_maybe_parallel (name : string) (config : Fcstack.Toolchain.config)
    (run : config:Fcstack.Toolchain.config -> 'a) : 'a =
  let { Fcstack.Toolchain.jobs; cache; _ } = config in
  if jobs <= 1 then run ~config
  else begin
    let seq_config = { config with Fcstack.Toolchain.jobs = 1; cache = None } in
    let seq, t_seq = timed (fun () -> run ~config:seq_config) in
    let all_hits (st : Wcet.Report.analysis_stats) : int =
      st.Wcet.Report.st_hits + st.Wcet.Report.st_disk_hits
    in
    let hits0 =
      match cache with None -> 0 | Some c -> all_hits (Wcet.Memo.stats c)
    in
    let par, t_par = timed (fun () -> run ~config) in
    let cache_note =
      match cache with
      | None -> "uncached"
      | Some c ->
        let st = Wcet.Memo.stats c in
        Printf.sprintf "cached: +%d hits, %.1f%% cumulative hit rate"
          (all_hits st - hits0)
          (Wcet.Report.hit_rate st)
    in
    Printf.eprintf
      "%s: sequential uncached %.2fs, parallel (%d jobs, %s) %.2fs, \
       speedup %.2fx, results %s\n%!"
      name t_seq jobs cache_note t_par
      (if t_par > 0.0 then t_seq /. t_par else 0.0)
      (if seq = par then "identical" else "DIFFERENT (determinism bug!)");
    par
  end

(* Hidden chaos mode (--chaos): run the deterministic fault-injection
   harness (Fcstack.Chaos) instead of the experiments. Everything goes
   to stderr; exit 0 when every containment check held, 1 otherwise.
   CI drives this with a pinned seed. *)
let run_chaos (seed : int) (engine : Wcet.Report.engine) : int =
  (* the server leg needs the real daemon binary; located relative to
     this executable inside the dune build tree (absent = leg skipped,
     e.g. when the harness runs from an installed bench alone) *)
  let fcd_exe = Fcstack.Service.sibling_exe "fcd.exe" in
  let r = Fcstack.Chaos.run ~seed ~engine ?fcd_exe () in
  Format.eprintf "%a@." Fcstack.Chaos.print_report r;
  if r.Fcstack.Chaos.ch_problems = [] then 0 else 1

(* ---- scaling study (-e scale / -e scale-leg) ----------------------- *)

(* [-e scale-leg]: one leg of the study in *this* process — compile +
   analyze the -n workload under the config the flags describe, print
   the measured leg as one JSON line on stdout. The study driver
   ([-e scale]) spawns each leg as a child process so every leg starts
   from a fresh heap: RSS never shrinks under the OCaml runtime, so
   in-process legs would inherit the high-water mark of whichever leg
   ran before them and the per-leg peak-RSS numbers would be
   meaningless. *)
let run_scale_leg (label : string) (nodes : int)
    (config : Fcstack.Toolchain.config) : int =
  let leg = Fcstack.Experiments.run_scale_leg ~nodes ~config () in
  print_string (Fcstack.Experiments.scale_leg_json ~label ~config leg);
  print_newline ();
  Fcstack.Cliopts.report_stats ~always:true config;
  Fcstack.Cliopts.finalize config;
  if leg.Fcstack.Experiments.sc_failures = 0 then 0 else 1

let rec rm_rf (path : string) : unit =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* [-e scale]: the scaling trajectory — for each -n point, stream legs
   sequential/parallel/cold-cache/warm-cache plus (up to a size cap) a
   batch reference leg, each in a fresh child process, aggregated into
   one JSON document (the published BENCH_scale.json). The disk cache
   backing the cold/warm pair is a per-point temporary directory, so
   "cold" is truly cold and "warm" replays exactly that point. *)
let run_scale (points : int list) (jobs : int) (shard_size : int)
    (compiler : string) : int =
  let exe = Sys.executable_name in
  let failed = ref false in
  (* child spawning goes through the service's argv helper — the same
     quoting/reaping path the chaos server leg uses, not a per-call-site
     copy *)
  let leg ~(label : string) (args : string list) : string option =
    let line, status = Fcstack.Service.open_process_line (exe :: args) in
    (match status with
     | Unix.WEXITED 0 -> ()
     | _ ->
       failed := true;
       Printf.eprintf "scale: leg %s exited non-zero\n%!" label);
    if line = None then begin
      failed := true;
      Printf.eprintf "scale: leg %s produced no output\n%!" label
    end;
    line
  in
  (* the batch reference materializes the whole workload; past this
     size it stops being a reference and starts being a memory stunt *)
  let batch_cap = 25_000 in
  let jpar = if jobs > 1 then jobs else 4 in
  let legs_of_point (n : int) : string list =
    let base =
      [ "-e"; "scale-leg"; "-n"; string_of_int n; "--scale-compiler"; compiler ]
    in
    (* --shard-size implies --stream, so only streaming legs get it;
       the batch reference must run with no stream flags at all *)
    let sharded = [ "--shard-size"; string_of_int shard_size ] in
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fcstack-scale-%d-%d" (Unix.getpid ()) n)
    in
    let specs =
      [ ("stream-seq-nocache", sharded @ [ "-j"; "1"; "--no-cache" ]);
        ("stream-par-nocache",
         sharded @ [ "-j"; string_of_int jpar; "--no-cache" ]);
        ("stream-seq-cold", sharded @ [ "-j"; "1"; "--cache-dir"; dir ]);
        ("stream-seq-warm", sharded @ [ "-j"; "1"; "--cache-dir"; dir ]) ]
      @ (if n <= batch_cap then
           [ ("batch-seq-nocache", [ "-j"; "1"; "--no-cache" ]) ]
         else [])
    in
    let rows =
      List.filter_map
        (fun (label, extra) ->
           leg ~label (base @ [ "--scale-label"; label ] @ extra))
        specs
    in
    rm_rf dir;
    rows
  in
  let rows = List.concat_map legs_of_point points in
  Printf.printf
    "{\n\
    \  \"benchmark\": \"scale\",\n\
    \  \"seed\": 2026,\n\
    \  \"compiler\": %S,\n\
    \  \"shard_size\": %d,\n\
    \  \"legs\": [\n%s\n\
    \  ]\n\
     }\n"
    compiler shard_size
    (String.concat ",\n" (List.map (fun r -> "    " ^ r) rows));
  if !failed then 1 else 0

(* ---- warm-latency serve study (-e serve) ---------------------------- *)

(* [-e serve]: drive a real fcd serve loop (in a Domain, over a real
   Unix-domain socket) with the flight workload, three legs against one
   store directory:

     cold       fresh daemon, empty store — every analysis is a miss
     warm       same daemon, same requests — answered entirely from the
                in-memory Wcet.Memo (the leg asserts 0 misses)
     disk-warm  daemon restarted on the same store — answered from the
                persistent half

   Every leg's responses must be byte-identical to an in-process cold
   batch run of the same requests (serve == batch), and the stats
   deltas per leg are part of the published JSON (BENCH_serve.json).
   Wall clock varies run to run; the hit/miss columns and the
   byte-identity verdicts are the stable part. *)
let run_serve (nodes : int) (engine : Wcet.Report.engine) (jobs : int)
    (rounds : int) (deadline_ms : int option) : int =
  let open Fcstack in
  let nodes = min 12 nodes in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fcserve-%d" (Unix.getpid ()))
  in
  rm_rf tmp;
  Unix.mkdir tmp 0o755;
  let socket = Filename.concat tmp "fcd.sock" in
  let store = Filename.concat tmp "cache" in
  let opts = Toolchain.request_opts ~engine () in
  let requests =
    List.map
      (fun (n, prog) ->
         Request.make ~name:n.Scade.Symbol.n_name
           ~action:
             (Request.Analyze
                { an_compare = false; an_simulate = false; an_annot = None })
           ~opts ?deadline_ms
           (Minic.Pp.program_to_string prog))
      (Scade.Workload.flight_program ~nodes ~seed:2026)
  in
  (* the batch reference: same requests, fresh cacheless in-process
     session — what a cold `aitw` run would print *)
  let reference =
    let s = Service.create () in
    List.map
      (fun rq -> (Service.run_request s rq).Response.rs_output)
      requests
  in
  let failed = ref false in
  let problem fmt =
    Printf.ksprintf
      (fun m ->
         failed := true;
         Printf.eprintf "serve: %s\n%!" m)
      fmt
  in
  let start_daemon () : Service.session * unit Domain.t =
    let session =
      Service.create
        ~state:
          (Toolchain.session ~jobs
             ~cache:(Wcet.Memo.create ~dir:store ())
             ())
        ()
    in
    let d =
      Domain.spawn (fun () -> Service.serve_unix ~log:false session socket)
    in
    if not (Service.wait_for_path socket) then
      problem "daemon socket %s never appeared" socket;
    (session, d)
  in
  let stop_daemon ((_, d) : Service.session * unit Domain.t) : unit =
    (match Service.Client.connect socket with
     | Ok conn -> Service.Client.shutdown conn
     | Error msg -> problem "shutdown connect failed: %s" msg);
    Domain.join d
  in
  (* one leg = the whole request list over one connection; the JSON row
     carries the latency profile and this leg's stats delta *)
  let run_leg (session : Service.session) ~(label : string)
      ~(expect_no_miss : bool) : string option =
    let before = Service.stats session in
    match Service.Client.connect socket with
    | Error msg ->
      problem "%s: %s" label msg;
      None
    | Ok conn ->
      let t_leg0 = Unix.gettimeofday () in
      let times, outputs =
        List.fold_left
          (fun (times, outputs) rq ->
             let t0 = Unix.gettimeofday () in
             let r = Service.Client.request conn rq in
             let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
             if r.Response.rs_status <> Response.Sok then
               problem "%s: request %s not ok (%s)" label rq.Request.rq_name
                 (Response.status_to_string r.Response.rs_status);
             (dt :: times, r.Response.rs_output :: outputs))
          ([], []) requests
      in
      let total_ms = (Unix.gettimeofday () -. t_leg0) *. 1000.0 in
      Service.Client.close conn;
      let outputs = List.rev outputs in
      let identical = outputs = reference in
      if not identical then
        problem "%s: responses differ from the cold batch reference" label;
      let delta f =
        match (before, Service.stats session) with
        | Some b, Some a -> f a - f b
        | _ -> 0
      in
      let misses = delta (fun st -> st.Wcet.Report.st_misses) in
      if expect_no_miss && misses <> 0 then
        problem "%s: expected a fully warm leg, saw %d misses" label misses;
      let n = List.length times in
      Some
        (Printf.sprintf
           "    { \"label\": %S, \"requests\": %d, \"total_ms\": %.2f, \
            \"mean_ms\": %.2f, \"max_ms\": %.2f, \"memory_hits\": %d, \
            \"disk_hits\": %d, \"misses\": %d, \"identical_to_batch\": %b }"
           label n total_ms
           (if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 times /. float_of_int n)
           (List.fold_left max 0.0 times)
           (delta (fun st -> st.Wcet.Report.st_hits))
           (delta (fun st -> st.Wcet.Report.st_disk_hits))
           misses identical)
  in
  let daemon = start_daemon () in
  let session = fst daemon in
  let rows =
    List.filter_map
      (fun f -> f ())
      ([ (fun () -> run_leg session ~label:"cold" ~expect_no_miss:false) ]
       @ List.init (max 1 rounds) (fun i () ->
             run_leg session
               ~label:(Printf.sprintf "warm-%d" (i + 1))
               ~expect_no_miss:true))
  in
  stop_daemon daemon;
  (* restart on the same store: the persistent half serves the repeats *)
  let daemon2 = start_daemon () in
  let rows =
    rows
    @ Option.to_list
        (run_leg (fst daemon2) ~label:"disk-warm" ~expect_no_miss:true)
  in
  stop_daemon daemon2;
  rm_rf tmp;
  Printf.printf
    "{\n\
    \  \"benchmark\": \"serve\",\n\
    \  \"seed\": 2026,\n\
    \  \"nodes\": %d,\n\
    \  \"engine\": %S,\n\
    \  \"legs\": [\n%s\n\
    \  ]\n\
     }\n"
    nodes
    (Fcstack.Request.engine_to_string engine)
    (String.concat ",\n" rows);
  if !failed then 1 else 0

(* Compiler selection for the scale legs ([--scale-compiler]); the
   default study compiles with the cheapest configuration — the study
   measures pipeline scaling, not code quality, and the analyzer
   dominates either way. *)
let scale_compilers : (string * Fcstack.Toolchain.compiler) list =
  [ ("o0", Fcstack.Chain.Cdefault_o0);
    ("o1", Fcstack.Chain.Cdefault_o1);
    ("o2", Fcstack.Chain.Cdefault_o2);
    ("vcomp", Fcstack.Chain.Cvcomp) ]

let run_bench (experiment : string) (nodes : int)
    (passes : Vcomp.Pass.options) (engine : Wcet.Report.engine) (jobs : int)
    (stream : Fcstack.Toolchain.stream_opts option) (chaos : bool)
    (chaos_seed : int) (scale_points : int list)
    (scale_compiler : Fcstack.Toolchain.compiler) (scale_label : string)
    (serve_rounds : int) (deadline_ms : int option)
    (copts : Fcstack.Cliopts.cache_opts) : int =
  if chaos then run_chaos chaos_seed engine
  else if experiment = "serve" then
    run_serve nodes engine jobs serve_rounds deadline_ms
  else if experiment = "scale" then
    let shard_size =
      match stream with
      | Some s -> s.Fcstack.Toolchain.so_shard_size
      | None -> Fcstack.Toolchain.default_stream.Fcstack.Toolchain.so_shard_size
    in
    let name =
      fst (List.find (fun (_, c) -> c = scale_compiler) scale_compilers)
    in
    run_scale scale_points jobs shard_size name
  else if experiment = "scale-leg" then begin
    let config =
      Fcstack.Cliopts.config_of_opts ~jobs ~passes ~engine
        ~compiler:scale_compiler ?stream copts
    in
    run_scale_leg scale_label nodes config
  end
  else begin
  let want (e : string) : bool = experiment = "all" || experiment = e in
  (* one shared analysis cache for the whole process: experiments and
     domains all feed it (content-addressed, so sharing across compiler
     configurations — and, when persistent, across runs — is sound) *)
  let config =
    Fcstack.Cliopts.config_of_opts ~jobs ~passes ~engine ?stream copts
  in
  let workload =
    lazy
      (let wr =
         run_maybe_parallel "workload" config (fun ~config ->
             Fcstack.Experiments.run_workload ~nodes ~config ())
       in
       (* per-node failures: stderr-only summary, tables show survivors *)
       Fcstack.Diag.print_summary ~total:nodes
         wr.Fcstack.Experiments.wr_diags;
       (* per-pass middle-end accounting: stderr-only, like the cache
          stats below — stdout tables stay byte-identical across -O *)
       Format.eprintf "%a@?" Vcomp.Pass.pp_stats
         wr.Fcstack.Experiments.wr_pass_stats;
       wr)
  in
  if experiment = "gvnlicm" then begin
    (* pure JSON on stdout (no separator banner): the published
       BENCH_gvn_licm.json is exactly this output *)
    Fcstack.Experiments.print_gvn_licm_json ppf ~nodes:(min 30 nodes) ~config
      ();
    Format.pp_print_flush ppf ();
    Fcstack.Cliopts.report_stats ~always:true config;
    Fcstack.Cliopts.finalize config;
    0
  end
  else if experiment = "engines" then begin
    (* pure JSON on stdout: the published BENCH_engines.json. Runs
       under --engine both regardless of the flag, so the driver
       cross-checks omt <= ipet on every analysis. *)
    Fcstack.Experiments.print_engines_json ppf ~nodes:(min 30 nodes) ~config
      ();
    Format.pp_print_flush ppf ();
    Fcstack.Cliopts.report_stats ~always:true config;
    Fcstack.Cliopts.finalize config;
    0
  end
  else begin
  if want "listings" then begin
    sep "Experiment listing-1-2";
    Fcstack.Experiments.print_listings ppf
  end;
  if want "table1" then begin
    sep "Experiment table-1";
    Fcstack.Experiments.print_table1 ppf (Lazy.force workload);
    Format.fprintf ppf "@."
  end;
  if want "figure2" then begin
    sep "Experiment figure-2";
    Fcstack.Experiments.print_figure2 ppf (Lazy.force workload);
    Format.fprintf ppf "@."
  end;
  if want "annot" then begin
    sep "Experiment annot-flow";
    Fcstack.Experiments.print_annot_demo ppf;
    Format.fprintf ppf "@."
  end;
  if want "ablation" then begin
    sep "Experiment ablation";
    Fcstack.Experiments.print_ablation ppf ~nodes:(min 30 nodes) ~config ();
    Format.fprintf ppf "@."
  end;
  if want "overestimation" then begin
    sep "Experiment overestimation";
    Fcstack.Experiments.print_overestimation ppf ~nodes:(min 20 nodes) ~config
      ();
    Format.fprintf ppf "@."
  end;
  if want "micro" then run_micro ();
  Format.pp_print_flush ppf ();
  (* cache accounting to stderr only: stdout tables stay byte-identical
     with and without the cache (CI cmp-enforces this) *)
  Fcstack.Cliopts.report_stats ~always:true config;
  Fcstack.Cliopts.finalize config;
  0
  end
  end

open Cmdliner

let experiment_arg =
  Arg.(value & opt string "all"
       & info [ "e"; "experiment" ] ~docv:"EXPERIMENT"
           ~doc:"Run only $(docv): listings, table1, figure2, annot, \
                 ablation, overestimation, micro, gvnlicm (pure-JSON \
                 GVN/LICM deltas; never part of $(b,all)), engines \
                 (pure-JSON IPET-vs-OMT differential study; never part \
                 of $(b,all)), scale (pure-JSON scaling study: wall \
                 clock, peak RSS, throughput and cache hit rate per \
                 $(b,--scale-points) workload size, each leg in a fresh \
                 child process; never part of $(b,all)), scale-leg \
                 (one scale leg in-process), or serve (pure-JSON \
                 warm-latency study of the fcd serve loop: cold, warm \
                 and restarted-daemon legs against one store, \
                 byte-checked against the batch pipeline; never part \
                 of $(b,all)) (default: all).")

let nodes_arg =
  Arg.(value & opt int 60
       & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Workload size (default 60).")

let jobs_arg =
  Fcstack.Cliopts.jobs_term
    ~doc:"Per-node parallelism; with $(docv) > 1 every workload-driven \
          experiment is also timed sequentially and the comparison goes \
          to stderr (stdout tables stay byte-identical)."

(* maintenance flags, hidden from the man page *)
let chaos_arg =
  Arg.(value & flag
       & info [ "chaos" ] ~docs:Manpage.s_none
           ~doc:"Run the deterministic fault-injection harness instead \
                 of the experiments (report on stderr; exit 1 on any \
                 containment violation).")

let chaos_seed_arg =
  Arg.(value & opt int 20260806
       & info [ "chaos-seed" ] ~docv:"SEED" ~docs:Manpage.s_none
           ~doc:"Seed for --chaos fault selection.")

let scale_points_arg =
  Arg.(value & opt (list int) [ 2500; 25000; 250000 ]
       & info [ "scale-points" ] ~docv:"N,..." ~docs:Manpage.s_none
           ~doc:"Workload sizes the -e scale study sweeps.")

let scale_compiler_arg =
  Arg.(value & opt (enum scale_compilers) Fcstack.Chain.Cdefault_o0
       & info [ "scale-compiler" ] ~docv:"CC" ~docs:Manpage.s_none
           ~doc:"Compiler configuration for the scale legs \
                 (o0|o1|o2|vcomp, default o0).")

let serve_rounds_arg =
  Arg.(value & opt int 1
       & info [ "serve-rounds" ] ~docv:"K" ~docs:Manpage.s_none
           ~doc:"Warm rounds the -e serve study repeats (default 1).")

let scale_label_arg =
  Arg.(value & opt string ""
       & info [ "scale-label" ] ~docv:"LABEL" ~docs:Manpage.s_none
           ~doc:"Leg label embedded in -e scale-leg JSON output.")

let cmd =
  let doc = "regenerate the paper's evaluation tables and figures" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const run_bench $ experiment_arg $ nodes_arg
      $ Fcstack.Cliopts.passes_term $ Fcstack.Cliopts.engine_term $ jobs_arg
      $ Fcstack.Cliopts.stream_term $ chaos_arg $ chaos_seed_arg
      $ scale_points_arg $ scale_compiler_arg $ scale_label_arg
      $ serve_rounds_arg $ Fcstack.Cliopts.deadline_ms_term
      $ Fcstack.Cliopts.cache_term)

let () = exit (Cmd.eval' cmd)
