(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md, per-experiment index) and adds
   Bechamel micro-benchmarks of the toolchain itself.

   Usage:
     bench/main.exe                 run everything (default workload)
     bench/main.exe -e table1       only Table 1
     bench/main.exe -e figure2      only Figure 2
     bench/main.exe -e listings     only Listings 1/2
     bench/main.exe -e annot       only the annotation-flow demo
     bench/main.exe -e ablation    only the ablations
     bench/main.exe -e overestimation   bound tightness study
     bench/main.exe -e micro       only the Bechamel micro-benchmarks
     bench/main.exe -n 120         workload size (default 60)
     bench/main.exe -j 4           per-node parallelism (default 1)
     bench/main.exe --no-cache     disable the shared WCET-analysis cache

   With -j > 1 every workload-driven experiment is measured both
   sequentially and in parallel; the wall-clock comparison goes to
   stderr so the tables on stdout stay byte-identical to a -j 1 run.

   One content-addressed WCET-analysis cache (Wcet.Memo) is shared by
   all experiments and all domains of the process; the sequential
   reference leg of a -j comparison deliberately runs uncached, so the
   stderr line is a seq-uncached vs parallel-cached wall-clock
   comparison. Hit/miss/phase accounting also goes to stderr
   (Report.pp_stats); stdout tables are byte-identical with and
   without the cache — the cache changes wall clock, never results. *)

let ppf = Format.std_formatter

let sep (title : string) : unit =
  Format.fprintf ppf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let run_micro () : unit =
  sep "Micro-benchmarks (Bechamel): toolchain phases on one medium node";
  let node =
    Scade.Workload.generate_node ~profile:Scade.Workload.medium_node ~seed:42
      "bench"
  in
  let src = Scade.Acg.generate node in
  let vcomp_asm = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let tests =
    [ Bechamel.Test.make ~name:"acg"
        (Bechamel.Staged.stage (fun () -> ignore (Scade.Acg.generate node)));
      Bechamel.Test.make ~name:"compile-default-O0"
        (Bechamel.Staged.stage (fun () ->
             ignore (Cotsc.Driver.compile ~level:Cotsc.Driver.Onone src)));
      Bechamel.Test.make ~name:"compile-default-O2"
        (Bechamel.Staged.stage (fun () ->
             ignore (Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull src)));
      Bechamel.Test.make ~name:"compile-vcomp"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Vcomp.Driver.compile ~options:Vcomp.Driver.no_validation src)));
      Bechamel.Test.make ~name:"compile-vcomp-validated"
        (Bechamel.Staged.stage (fun () -> ignore (Vcomp.Driver.compile src)));
      Bechamel.Test.make ~name:"wcet-analysis"
        (Bechamel.Staged.stage (fun () ->
             ignore (Fcstack.Chain.wcet vcomp_asm)));
      Bechamel.Test.make ~name:"simulate-one-cycle"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Fcstack.Chain.simulate vcomp_asm
                  (Minic.Interp.seeded_world ~seed:1 ())))) ]
  in
  let benchmark test =
    let open Bechamel in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
       let results = benchmark test in
       Hashtbl.iter
         (fun name ols ->
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ t ] -> Format.fprintf ppf "  %-28s %12.1f ns/run@." name t
            | Some _ | None -> Format.fprintf ppf "  %-28s (no estimate)@." name)
         results)
    tests

(* Wall-clock of one run; with -j > 1, run sequentially first and then
   in parallel, report the comparison on stderr and check the results
   agree byte-for-byte (the determinism contract of Fcstack.Par and
   the cached-equals-uncached contract of Wcet.Memo: the sequential
   reference leg runs without the cache). *)
let timed (f : unit -> 'a) : 'a * float =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_maybe_parallel (name : string) (jobs : int)
    (cache : Wcet.Memo.t option)
    (run : jobs:int -> cache:Wcet.Memo.t option -> 'a) : 'a =
  if jobs <= 1 then run ~jobs:1 ~cache
  else begin
    let seq, t_seq = timed (fun () -> run ~jobs:1 ~cache:None) in
    let hits0 =
      match cache with
      | None -> 0
      | Some c -> (Wcet.Memo.stats c).Wcet.Report.st_hits
    in
    let par, t_par = timed (fun () -> run ~jobs ~cache) in
    let cache_note =
      match cache with
      | None -> "uncached"
      | Some c ->
        let st = Wcet.Memo.stats c in
        Printf.sprintf "cached: +%d hits, %.1f%% cumulative hit rate"
          (st.Wcet.Report.st_hits - hits0)
          (Wcet.Report.hit_rate st)
    in
    Printf.eprintf
      "%s: sequential uncached %.2fs, parallel (%d jobs, %s) %.2fs, \
       speedup %.2fx, results %s\n%!"
      name t_seq jobs cache_note t_par
      (if t_par > 0.0 then t_seq /. t_par else 0.0)
      (if seq = par then "identical" else "DIFFERENT (determinism bug!)");
    par
  end

let () =
  let experiment = ref "all" in
  let nodes = ref 60 in
  let jobs = ref 1 in
  let use_cache = ref true in
  let rec parse (args : string list) : unit =
    match args with
    | "-e" :: e :: rest ->
      experiment := e;
      parse rest
    | "-n" :: n :: rest ->
      nodes := int_of_string n;
      parse rest
    | "-j" :: j :: rest ->
      jobs := max 1 (int_of_string j);
      parse rest
    | "--no-cache" :: rest ->
      use_cache := false;
      parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let want (e : string) : bool = !experiment = "all" || !experiment = e in
  (* one shared analysis cache for the whole process: experiments and
     domains all feed it (content-addressed, so sharing across compiler
     configurations is sound) *)
  let cache = if !use_cache then Some (Wcet.Memo.create ()) else None in
  let workload =
    lazy
      (run_maybe_parallel "workload" !jobs cache (fun ~jobs ~cache ->
           Fcstack.Experiments.run_workload ~nodes:!nodes ~jobs ?cache ()))
  in
  if want "listings" then begin
    sep "Experiment listing-1-2";
    Fcstack.Experiments.print_listings ppf
  end;
  if want "table1" then begin
    sep "Experiment table-1";
    Fcstack.Experiments.print_table1 ppf (Lazy.force workload);
    Format.fprintf ppf "@."
  end;
  if want "figure2" then begin
    sep "Experiment figure-2";
    Fcstack.Experiments.print_figure2 ppf (Lazy.force workload);
    Format.fprintf ppf "@."
  end;
  if want "annot" then begin
    sep "Experiment annot-flow";
    Fcstack.Experiments.print_annot_demo ppf;
    Format.fprintf ppf "@."
  end;
  if want "ablation" then begin
    sep "Experiment ablation";
    Fcstack.Experiments.print_ablation ppf ~nodes:(min 30 !nodes) ~jobs:!jobs
      ?cache ();
    Format.fprintf ppf "@."
  end;
  if want "overestimation" then begin
    sep "Experiment overestimation";
    Fcstack.Experiments.print_overestimation ppf ~nodes:(min 20 !nodes)
      ~jobs:!jobs ?cache ();
    Format.fprintf ppf "@."
  end;
  if want "micro" then run_micro ();
  Format.pp_print_flush ppf ();
  (* cache accounting to stderr only: stdout tables stay byte-identical
     with and without the cache (CI cmp-enforces this) *)
  match cache with
  | Some c ->
    Format.eprintf "%a@." Wcet.Report.pp_stats (Wcet.Memo.stats c)
  | None -> ()
