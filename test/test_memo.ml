(* Tests of the content-addressed WCET-analysis cache (Wcet.Memo):
   cached analysis is observationally identical to uncached analysis
   (the qcheck contract), a one-byte code change misses, structurally
   identical functions under different names/signal names hit with the
   name re-stamped, cache hits keep the annotation fragment intact, and
   hits run no analysis phases. *)

module Asm = Target.Asm

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let build_src (text : string) : Minic.Ast.program =
  let p = Minic.Parser.parse_program text in
  Minic.Typecheck.check_program_exn p;
  p

(* Chain.wcet takes a whole Toolchain.config; these tests only vary the
   cache field *)
let wcet_c ~(cache : Wcet.Memo.t) (b : Fcstack.Chain.built) : Wcet.Report.t =
  Fcstack.Chain.wcet
    ~config:
      (Fcstack.Toolchain.of_session_request
         (Fcstack.Toolchain.session ~cache ())
         Fcstack.Toolchain.default_request)
    b

(* ---- cached == uncached, on random programs, with a cache shared
   across iterations and compilers so hits actually occur ---- *)

let cached_equals_uncached_prop =
  QCheck.Test.make ~count:40
    ~name:"memo: analyze ?cache = analyze (report and annotations)"
    QCheck.small_int
    (fun seed ->
       let cache = Wcet.Memo.create () in
       List.for_all
         (fun s ->
            let p = Testlib.Gen.gen_program s in
            List.for_all
              (fun comp ->
                 let b = Fcstack.Chain.build ~exact:true comp p in
                 let cached =
                   try
                     Ok
                       (Wcet.Driver.analyze_full ~cache b.Fcstack.Chain.b_asm
                          b.Fcstack.Chain.b_layout)
                   with Wcet.Driver.Error m -> Error m
                 in
                 let plain =
                   try
                     Ok
                       (Wcet.Driver.analyze_full b.Fcstack.Chain.b_asm
                          b.Fcstack.Chain.b_layout)
                   with Wcet.Driver.Error m -> Error m
                 in
                 cached = plain)
              Fcstack.Chain.all_compilers)
         (* same seed twice: the second round must be all hits and still
            agree with the uncached reference *)
         [ seed land 0xFFF; (seed land 0xFFF) + 1; seed land 0xFFF ])

(* WCET >= simulated cycles must hold through cache hits: analyze twice
   (second run served from cache) and compare the cached bound against
   the simulator. *)
let soundness_through_hits_prop =
  QCheck.Test.make ~count:25
    ~name:"memo: WCET >= simulated cycles through cache hits"
    QCheck.small_int
    (fun seed ->
       let cache = Wcet.Memo.create () in
       let p = Testlib.Gen.gen_program (seed land 0xFFF) in
       List.for_all
         (fun comp ->
            let b = Fcstack.Chain.build ~exact:true comp p in
            match
              ( wcet_c ~cache b,
                wcet_c ~cache b (* hit *) )
            with
            | r1, r2 ->
              r1 = r2
              && List.for_all
                   (fun s ->
                      let sim =
                        Fcstack.Chain.simulate b
                          (Minic.Interp.seeded_world ~seed:s ())
                      in
                      r2.Wcet.Report.rp_wcet
                      >= sim.Target.Sim.rr_stats.Target.Sim.cycles)
                   [ 1; 2; 3 ]
            | exception Wcet.Driver.Error _ -> true)
         Fcstack.Chain.all_compilers)

(* ---- a one-byte instruction change must miss ---- *)

let test_mutation_misses () =
  let src =
    build_src
      {| global int g; void m() { var int x; x = 5; $g = x + 1; } main m; |}
  in
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let cache = Wcet.Memo.create () in
  let r1 = Wcet.Driver.analyze ~cache b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout in
  checki "one miss after first analysis" 1
    (Wcet.Memo.stats cache).Wcet.Report.st_misses;
  (* flip one immediate in the entry function's code *)
  let mutated = ref false in
  let mutate_instr (i : Asm.instr) : Asm.instr =
    match i with
    | Asm.Paddi (d, s, imm) when not !mutated ->
      mutated := true;
      Asm.Paddi (d, s, Int32.add imm 1l)
    | _ -> i
  in
  let asm' =
    { b.Fcstack.Chain.b_asm with
      Asm.pr_funcs =
        List.map
          (fun f -> { f with Asm.fn_code = List.map mutate_instr f.Asm.fn_code })
          b.Fcstack.Chain.b_asm.Asm.pr_funcs }
  in
  checkb "an immediate was mutated" true !mutated;
  let r2 = Wcet.Driver.analyze ~cache asm' b.Fcstack.Chain.b_layout in
  checki "mutated code misses the cache" 2
    (Wcet.Memo.stats cache).Wcet.Report.st_misses;
  checki "two distinct entries" 2 (Wcet.Memo.length cache);
  (* the recomputed report is the uncached analysis of the mutated
     code, not the stale entry *)
  checkb "mutated report = fresh uncached analysis" true
    (r2 = Wcet.Driver.analyze asm' b.Fcstack.Chain.b_layout);
  ignore r1

(* the key itself: identical inputs agree, a mutated body differs *)
let test_key_digest () =
  let src = build_src {| global int g; void m() { $g = 3; } main m; |} in
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let f = List.hd b.Fcstack.Chain.b_asm.Asm.pr_funcs in
  let lay = b.Fcstack.Chain.b_layout in
  let k1 = Wcet.Memo.key lay ~base:0x1000 f in
  let k2 = Wcet.Memo.key lay ~base:0x1000 f in
  checks "same content, same digest" (Wcet.Memo.digest k1) (Wcet.Memo.digest k2);
  let k3 = Wcet.Memo.key lay ~base:0x1020 f in
  checkb "different base address, different digest" false
    (String.equal (Wcet.Memo.digest k1) (Wcet.Memo.digest k3))

(* ---- structurally identical nodes hit across names ---- *)

let test_hit_across_names () =
  (* same body; different function name and volatile signal names (the
     ACG node-prefixes both) — the second analysis must be a hit, with
     the report carrying the *second* name *)
  let srcA =
    build_src
      {| volatile in int sigA; global int g;
         void nodeA_main() { $g = volatile(sigA) + 2; } main nodeA_main; |}
  in
  let srcB =
    build_src
      {| volatile in int sigB; global int g;
         void nodeB_main() { $g = volatile(sigB) + 2; } main nodeB_main; |}
  in
  let bA = Fcstack.Chain.build Fcstack.Chain.Cvcomp srcA in
  let bB = Fcstack.Chain.build Fcstack.Chain.Cvcomp srcB in
  let cache = Wcet.Memo.create () in
  let rA = wcet_c ~cache bA in
  let rB = wcet_c ~cache bB in
  let st = Wcet.Memo.stats cache in
  checki "second analysis is a hit" 1 st.Wcet.Report.st_hits;
  checki "one analysis computed" 1 st.Wcet.Report.st_misses;
  checks "hit re-stamps the function name" "nodeB_main"
    rB.Wcet.Report.rp_function;
  checkb "identical bounds" true
    (rA.Wcet.Report.rp_wcet = rB.Wcet.Report.rp_wcet);
  (* and the hit is exactly what the uncached analysis computes *)
  checkb "hit = uncached analysis" true (rB = Fcstack.Chain.wcet bB)

(* ---- annotation fragments survive hits (with re-stamped names) ---- *)

let test_annotations_through_hits () =
  let text (n : string) : string =
    Printf.sprintf
      {| global int cfg; global double g;
         void %s() { var int i;
           $cfg = 6;
           for (i = 0; i < $cfg) {
             __builtin_annotation("loopbound 6");
             $g = $g +. 1.0; } } main %s; |}
      n n
  in
  let bA = Fcstack.Chain.build Fcstack.Chain.Cvcomp (build_src (text "fa")) in
  let bB = Fcstack.Chain.build Fcstack.Chain.Cvcomp (build_src (text "fb")) in
  let cache = Wcet.Memo.create () in
  let _, annotsA =
    Wcet.Driver.analyze_full ~cache bA.Fcstack.Chain.b_asm
      bA.Fcstack.Chain.b_layout
  in
  let _, annotsB =
    Wcet.Driver.analyze_full ~cache bB.Fcstack.Chain.b_asm
      bB.Fcstack.Chain.b_layout
  in
  checki "hit" 1 (Wcet.Memo.stats cache).Wcet.Report.st_hits;
  checkb "fragments non-empty" true (annotsA <> [] && annotsB <> []);
  List.iter
    (fun e -> checks "fragment function re-stamped" "fb" e.Wcet.Annotfile.an_function)
    annotsB;
  checkb "fragment equals direct extraction" true
    (List.for_all2 Wcet.Annotfile.entry_equal annotsB
       (Wcet.Annotfile.extract bB.Fcstack.Chain.b_asm));
  (* Driver.annotations assembles the program's file from the cache *)
  let from_cache =
    Wcet.Driver.annotations ~cache bB.Fcstack.Chain.b_asm
      bB.Fcstack.Chain.b_layout
  in
  checkb "program annotations from cache = extract" true
    (List.for_all2 Wcet.Annotfile.entry_equal from_cache
       (Wcet.Annotfile.extract bB.Fcstack.Chain.b_asm))

(* ---- hits run no phases; stats add up ---- *)

let test_phase_accounting () =
  let src = build_src {| global double g; void m() { var int i;
      for (i = 0; i < 12) { $g = $g +. 1.0; } } main m; |}
  in
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let cache = Wcet.Memo.create () in
  ignore (wcet_c ~cache b);
  let st1 = Wcet.Memo.stats cache in
  checki "decode ran once" 1 st1.Wcet.Report.st_decode;
  checki "IPET ran once" 1 st1.Wcet.Report.st_ipet;
  ignore (wcet_c ~cache b);
  ignore (wcet_c ~cache b);
  let st2 = Wcet.Memo.stats cache in
  checki "hits counted" 2 st2.Wcet.Report.st_hits;
  checki "no further decode" 1 st2.Wcet.Report.st_decode;
  checki "no further IPET" 1 st2.Wcet.Report.st_ipet;
  checki "one entry" 1 st2.Wcet.Report.st_entries;
  checkb "hit rate reported" true (Wcet.Report.hit_rate st2 > 0.0);
  checkb "stats render" true
    (String.length (Wcet.Report.stats_to_string st2) > 0)

(* a refused analysis is never cached: each attempt re-runs phases *)
let test_failure_not_cached () =
  let src =
    build_src
      {| global int cfg; global double g;
         void m() { var int i;
           $cfg = 6;
           for (i = 0; i < $cfg) { $g = $g +. 1.0; } } main m; |}
  in
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let cache = Wcet.Memo.create () in
  let attempt () =
    match wcet_c ~cache b with
    | _ -> Alcotest.fail "unbounded loop must be refused"
    | exception Wcet.Driver.Error _ -> ()
  in
  attempt ();
  attempt ();
  let st = Wcet.Memo.stats cache in
  checki "no entries cached" 0 st.Wcet.Report.st_entries;
  checki "two misses" 2 st.Wcet.Report.st_misses;
  checki "decode ran twice" 2 st.Wcet.Report.st_decode;
  checki "IPET never reached" 0 st.Wcet.Report.st_ipet

(* analyze_program: one report per function, same as one-by-one analyze *)
let test_analyze_program_matches () =
  let src =
    build_src
      {| global int g; global double h;
         void f1() { $g = 1; }
         void f2() { $h = 2.5; }
         void m() { $g = 3; }
         main m; |}
  in
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let cache = Wcet.Memo.create () in
  let all =
    Wcet.Driver.analyze_program ~cache b.Fcstack.Chain.b_asm
      b.Fcstack.Chain.b_layout
  in
  checki "one report per function" 3 (List.length all);
  List.iter
    (fun (name, r) ->
       checks "report carries its function" name r.Wcet.Report.rp_function;
       checkb (name ^ ": = analyze ~fname") true
         (r
          = Wcet.Driver.analyze ~fname:name b.Fcstack.Chain.b_asm
              b.Fcstack.Chain.b_layout))
    all

(* ---- pipeline specs never share entries ---- *)

(* Two optimization selections must never share a cache entry, even
   when they emit identical code for a node: the spec is part of the
   content key. A build under -O 1 and a build under -O 2 of a
   straight-line node (same assembly either way) must produce two
   entries and zero cross-spec hits. *)
let test_specs_never_share_entries () =
  let src =
    build_src {| global double g; double m() { return $g +. 1.0; } main m; |}
  in
  let b1 =
    Fcstack.Chain.build ~passes:(Vcomp.Pass.level 1) Fcstack.Chain.Cvcomp src
  in
  let b2 =
    Fcstack.Chain.build ~passes:(Vcomp.Pass.level 2) Fcstack.Chain.Cvcomp src
  in
  checkb "straight-line node: same assembly at -O 1 and -O 2" true
    (b1.Fcstack.Chain.b_asm = b2.Fcstack.Chain.b_asm);
  checkb "distinct specs recorded" true
    (b1.Fcstack.Chain.b_spec <> b2.Fcstack.Chain.b_spec);
  let cache = Wcet.Memo.create () in
  let r1 = wcet_c ~cache b1 in
  let r2 = wcet_c ~cache b2 in
  checki "identical bound (same code)" r1.Wcet.Report.rp_wcet
    r2.Wcet.Report.rp_wcet;
  let st = Wcet.Memo.stats cache in
  checki "two entries, one per spec" 2 st.Wcet.Report.st_entries;
  checki "no cross-spec hit" 0 st.Wcet.Report.st_hits;
  (* and the raw keys differ exactly when the spec differs *)
  let f = List.hd b1.Fcstack.Chain.b_asm.Asm.pr_funcs in
  let lay = b1.Fcstack.Chain.b_layout in
  let k1 = Wcet.Memo.key ~spec:b1.Fcstack.Chain.b_spec lay ~base:0 f in
  let k1' = Wcet.Memo.key ~spec:b1.Fcstack.Chain.b_spec lay ~base:0 f in
  let k2 = Wcet.Memo.key ~spec:b2.Fcstack.Chain.b_spec lay ~base:0 f in
  checkb "same spec, same digest" true
    (Wcet.Memo.digest k1 = Wcet.Memo.digest k1');
  checkb "different spec, different digest" true
    (Wcet.Memo.digest k1 <> Wcet.Memo.digest k2)

(* ---- engines never share entries ---- *)

(* The IPET and OMT engines bound the same code differently, so their
   results must never alias in the cache: the engine joins the content
   key. Analyzing one node under each engine yields one entry per
   engine and zero cross-engine hits; [Both] is its own third entry. *)
let test_engines_never_share_entries () =
  let src =
    build_src
      {| volatile in double e_in; global double g;
         void m() { var double x; x = volatile(e_in);
           if (x >. 10.0) { $g = x +. 1.0; } else { skip; }
           if (x <. 5.0)  { $g = $g +. 2.0; } else { skip; } } main m; |}
  in
  let b = Fcstack.Chain.build Fcstack.Chain.Cdefault_o0 src in
  let cache = Wcet.Memo.create () in
  let run engine =
    Wcet.Driver.analyze ~cache ~engine b.Fcstack.Chain.b_asm
      b.Fcstack.Chain.b_layout
  in
  let ipet = run Wcet.Report.Ipet in
  let omt = run Wcet.Report.Omt in
  let both = run Wcet.Report.Both in
  let st = Wcet.Memo.stats cache in
  checki "three engines, three entries" 3 st.Wcet.Report.st_entries;
  checki "no cross-engine hit" 0 st.Wcet.Report.st_hits;
  (* repeats are hits within their own engine *)
  checkb "ipet repeat hits its own entry" true (run Wcet.Report.Ipet = ipet);
  checkb "omt repeat hits its own entry" true (run Wcet.Report.Omt = omt);
  checki "two hits after repeats" 2
    (Wcet.Memo.stats cache).Wcet.Report.st_hits;
  ignore both;
  (* and the raw digests separate exactly on the engine *)
  let f = List.hd b.Fcstack.Chain.b_asm.Asm.pr_funcs in
  let lay = b.Fcstack.Chain.b_layout in
  let k e = Wcet.Memo.digest (Wcet.Memo.key ~engine:e lay ~base:0 f) in
  checks "default engine key = explicit Ipet key"
    (Wcet.Memo.digest (Wcet.Memo.key lay ~base:0 f))
    (k Wcet.Report.Ipet);
  checkb "ipet and omt digests differ" true
    (k Wcet.Report.Ipet <> k Wcet.Report.Omt);
  checkb "both is a third digest" true
    (k Wcet.Report.Both <> k Wcet.Report.Ipet
     && k Wcet.Report.Both <> k Wcet.Report.Omt)

(* the OMT phase counter: an Omt analysis runs Pomt, not Pipet; Both
   runs both; hits run neither *)
let test_engine_phase_accounting () =
  let src = build_src {| global double g; void m() { $g = 1.0; } main m; |} in
  let b = Fcstack.Chain.build Fcstack.Chain.Cvcomp src in
  let cache = Wcet.Memo.create () in
  let run engine =
    ignore
      (Wcet.Driver.analyze ~cache ~engine b.Fcstack.Chain.b_asm
         b.Fcstack.Chain.b_layout)
  in
  run Wcet.Report.Omt;
  let st1 = Wcet.Memo.stats cache in
  checki "omt counted" 1 st1.Wcet.Report.st_omt;
  checki "ipet not counted" 0 st1.Wcet.Report.st_ipet;
  run Wcet.Report.Both;
  let st2 = Wcet.Memo.stats cache in
  checki "both counts ipet" 1 st2.Wcet.Report.st_ipet;
  checki "both counts omt" 2 st2.Wcet.Report.st_omt;
  run Wcet.Report.Omt (* hit *);
  let st3 = Wcet.Memo.stats cache in
  checki "hit runs no omt phase" 2 st3.Wcet.Report.st_omt

let suite =
  [ QCheck_alcotest.to_alcotest cached_equals_uncached_prop;
    QCheck_alcotest.to_alcotest soundness_through_hits_prop;
    ("memo: one-byte mutation misses", `Quick, test_mutation_misses);
    ("memo: key digest stability", `Quick, test_key_digest);
    ("memo: structurally identical nodes hit across names", `Quick,
     test_hit_across_names);
    ("memo: annotation fragments through hits", `Quick,
     test_annotations_through_hits);
    ("memo: phase accounting", `Quick, test_phase_accounting);
    ("memo: refused analyses are not cached", `Quick, test_failure_not_cached);
    ("memo: analyze_program = per-function analyze", `Quick,
     test_analyze_program_matches);
    ("memo: optimization selections never share entries", `Quick,
     test_specs_never_share_entries);
    ("memo: engines never share entries", `Quick,
     test_engines_never_share_entries);
    ("memo: engine phase accounting", `Quick,
     test_engine_phase_accounting) ]
