(* Tests for the SCADE-like layer: symbol checking, scheduling, the
   qualified code generator against the independent dataflow semantics,
   and the workload generator. *)

module S = Scade.Symbol

let checkb = Alcotest.check Alcotest.bool

let inst w op = { S.i_wire = w; i_op = op }

(* ---- structural checks ---- *)

let test_check_rejects () =
  let bad_wire_twice =
    { S.n_name = "n";
      n_instances =
        [ inst (Some 1) (S.Yacq "a"); inst (Some 1) (S.Yacq "b") ] }
  in
  (try
     ignore (S.check_node bad_wire_twice);
     Alcotest.fail "duplicate wire accepted"
   with S.Ill_formed _ -> ());
  let bad_type =
    { S.n_name = "n";
      n_instances =
        [ inst (Some 1) (S.Yacq "a");
          inst (Some 2) (S.Ynot (S.Swire 1)) (* float into bool op *) ] }
  in
  (try
     ignore (S.check_node bad_type);
     Alcotest.fail "type mismatch accepted"
   with S.Ill_formed _ -> ());
  let bad_table =
    { S.n_name = "n";
      n_instances =
        [ inst (Some 1) (S.Yacq "a");
          inst (Some 2)
            (S.Ylookup
               ( { S.tb_breaks = [| 1.0; 0.5 |]; tb_values = [| 0.0; 0.0 |] },
                 S.Swire 1 )) ] }
  in
  try
    ignore (S.check_node bad_table);
    Alcotest.fail "non-monotonic table accepted"
  with S.Ill_formed _ -> ()

(* ---- scheduling ---- *)

let test_schedule_sorts () =
  (* instances listed backwards: the scheduler must reorder *)
  let n =
    { S.n_name = "n";
      n_instances =
        [ inst None (S.Yout ("o", S.Swire 2));
          inst (Some 2) (S.Ygain (2.0, S.Swire 1));
          inst (Some 1) (S.Yacq "a") ] }
  in
  let sorted = Scade.Schedule.sort n in
  ignore (S.check_node sorted); (* check_node requires dependency order *)
  checkb "three instances kept" true
    (List.length sorted.S.n_instances = 3)

let test_schedule_cycle () =
  let n =
    { S.n_name = "n";
      n_instances =
        [ inst (Some 1) (S.Ygain (1.0, S.Swire 2));
          inst (Some 2) (S.Ygain (1.0, S.Swire 1)) ] }
  in
  try
    ignore (Scade.Schedule.sort n);
    Alcotest.fail "combinational cycle accepted"
  with Scade.Schedule.Cycle _ -> ()

(* a delay breaks a feedback cycle legitimately *)
let test_delay_feedback () =
  let n =
    { S.n_name = "fb";
      n_instances =
        [ inst (Some 1) (S.Yacq "a");
          inst (Some 3) (S.Ydelay (S.Swire 2)); (* state: reads w2 *)
          inst (Some 2) (S.Ysum (S.Swire 1, S.Swire 3)) ] }
  in
  (* schedule: delay's READ of w2 happens... dataflow semantics requires
     w2 before the delay instance; the delay emits last cycle's value.
     Our scheduler is purely structural, so this is a cycle unless the
     delay is listed after its source; the accepted modelling is
     delay-after-producer. *)
  match Scade.Schedule.sort n with
  | _ -> Alcotest.fail "structural cycle through delay must be broken by design"
  | exception Scade.Schedule.Cycle _ -> ()

(* ---- ACG vs dataflow semantics (the key equivalence) ---- *)

let acg_matches_semantics_prop =
  QCheck.Test.make ~count:60 ~name:"ACG = dataflow semantics (multi-cycle)"
    QCheck.small_int
    (fun seed ->
       let node =
         Scade.Workload.generate_node ~profile:Scade.Workload.medium_node
           ~seed:(seed land 0xFFFF) "prop"
       in
       let src = Scade.Acg.generate node in
       Minic.Typecheck.check_program_exn src;
       let w () = Minic.Interp.seeded_world ~seed () in
       let sem = Scade.Semantics.run node (w ()) ~cycles:5 in
       let interp = Minic.Interp.run_cycles src (w ()) ~cycles:5 in
       List.length sem = List.length interp.Minic.Interp.res_events
       && List.for_all2 Minic.Interp.event_equal sem
            interp.Minic.Interp.res_events)

(* every symbol kind at least once, against the semantics *)
let test_all_symbols_node () =
  let node =
    Scade.Schedule.sort
      { S.n_name = "all";
        n_instances =
          [ inst (Some 1) (S.Yacq "x");
            inst (Some 2) (S.Ygain (1.5, S.Swire 1));
            inst (Some 3) (S.Ybias (-0.5, S.Swire 2));
            inst (Some 4) (S.Ysum (S.Swire 2, S.Swire 3));
            inst (Some 5) (S.Ydiff (S.Swire 4, S.Swire 1));
            inst (Some 6) (S.Yprod (S.Swire 5, S.Swire 2));
            inst (Some 7) (S.Ydivsafe (S.Swire 6, S.Swire 1));
            inst (Some 8) (S.Yabs (S.Swire 7));
            inst (Some 9) (S.Yneg (S.Swire 8));
            inst (Some 10) (S.Ysqrt_approx (S.Swire 8));
            inst (Some 11) (S.Ylimiter (-5.0, 5.0, S.Swire 9));
            inst (Some 12) (S.Ydeadband (0.3, S.Swire 11));
            inst (Some 13) (S.Yfilter (0.2, S.Swire 12));
            inst (Some 14) (S.Ydelay (S.Swire 13));
            inst (Some 15) (S.Yintegrator (0.01, -2.0, 2.0, S.Swire 14));
            inst (Some 16) (S.Yratelimit (0.7, S.Swire 15));
            inst (Some 17)
              (S.Ylookup
                 ( { S.tb_breaks = [| -1.0; 0.0; 2.0 |];
                     tb_values = [| 3.0; 1.0; -2.0 |] },
                   S.Swire 16 ));
            inst (Some 18) (S.Ymovavg (4, S.Swire 17));
            inst (Some 19) (S.Ycmp (S.CMPgt, S.Swire 18, S.Swire 1));
            inst (Some 20) (S.Yhysteresis (1.0, 0.4, S.Swire 18));
            inst (Some 21) (S.Yand (S.Swire 19, S.Swire 20));
            inst (Some 22) (S.Yor (S.Swire 19, S.Swire 21));
            inst (Some 23) (S.Ynot (S.Swire 22));
            inst (Some 24) (S.Ycount (S.Swire 23));
            inst (Some 25) (S.Yselect (S.Swire 23, S.Swire 18, S.Swire 16));
            inst (Some 26) (S.Ymodalsum (5, S.Swire 25));
            inst None (S.Yout ("y", S.Swire 26));
            inst None (S.Youtb ("b", S.Swire 23)) ] }
  in
  let src = Scade.Acg.generate node in
  Minic.Typecheck.check_program_exn src;
  List.iter
    (fun seed ->
       let w () = Minic.Interp.seeded_world ~seed () in
       let sem = Scade.Semantics.run node (w ()) ~cycles:6 in
       let interp = Minic.Interp.run_cycles src (w ()) ~cycles:6 in
       checkb
         (Printf.sprintf "all symbols, seed %d" seed)
         true
         (List.length sem = List.length interp.Minic.Interp.res_events
          && List.for_all2 Minic.Interp.event_equal sem
               interp.Minic.Interp.res_events);
       (* and through every compiler and the simulator *)
       List.iter
         (fun comp ->
            let b = Fcstack.Chain.build ~exact:true comp src in
            match Fcstack.Chain.validate_chain ~cycles:6 ~seeds:[ seed ] b with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg)
         Fcstack.Chain.all_compilers)
    [ 1; 5; 11 ]

(* workload generation is deterministic and well-formed *)
let test_workload_deterministic () =
  let p1 = Scade.Workload.flight_program ~nodes:6 ~seed:99 in
  let p2 = Scade.Workload.flight_program ~nodes:6 ~seed:99 in
  List.iter2
    (fun (_, a) (_, b) ->
       Alcotest.check Alcotest.string "same source" (Minic.Pp.program_to_string a)
         (Minic.Pp.program_to_string b))
    p1 p2

(* sharded generation slices the monolithic workload exactly: the
   concatenation of all shards equals flight_program at any shard size,
   so a shard regenerated in isolation is the slice it claims to be *)
let workload_shards_concat_prop =
  QCheck.Test.make ~count:20 ~name:"workload shards concat = flight_program"
    QCheck.small_int
    (fun seed ->
       let nodes = 1 + (seed land 15) in
       let shard_size = 1 + (seed mod 7) in
       let plan =
         Scade.Workload.shard_plan ~shard_size ~nodes ~seed:(500 + seed) ()
       in
       let sharded =
         List.init (Scade.Workload.shard_count plan) (fun k ->
             Array.to_list (Scade.Workload.generate_shard plan k))
         |> List.concat
       in
       let mono = Scade.Workload.flight_program ~nodes ~seed:(500 + seed) in
       List.length sharded = List.length mono
       && List.for_all2
            (fun (na, a) (nb, b) ->
               na = nb
               && Minic.Pp.program_to_string a = Minic.Pp.program_to_string b)
            sharded mono)

let workload_wellformed_prop =
  QCheck.Test.make ~count:30 ~name:"workload nodes typecheck"
    QCheck.small_int
    (fun seed ->
       let node =
         Scade.Workload.generate_node ~seed:(seed land 0xFFFF) "wf"
       in
       let src = Scade.Acg.generate node in
       match Minic.Typecheck.check_program src with
       | Ok () -> true
       | Error _ -> false)

let suite =
  [ ("symbol checking rejects ill-formed nodes", `Quick, test_check_rejects);
    ("scheduler reorders", `Quick, test_schedule_sorts);
    ("scheduler rejects cycles", `Quick, test_schedule_cycle);
    ("delay feedback modelling", `Quick, test_delay_feedback);
    QCheck_alcotest.to_alcotest acg_matches_semantics_prop;
    ("every symbol, all compilers", `Slow, test_all_symbols_node);
    ("workload determinism", `Quick, test_workload_deterministic);
    QCheck_alcotest.to_alcotest workload_shards_concat_prop;
    QCheck_alcotest.to_alcotest workload_wellformed_prop ]
