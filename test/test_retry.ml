(* Tests of the client retry policy (Fcstack.Retry): the backoff
   schedule is a pure function of the policy (deterministic from the
   seed, qcheck-pinned), bounded by [r_max_ms] and monotone in spirit
   (exponential base under the cap), and [run] retries transport/busy
   failures only — a refusal is FINAL, provably never re-issued, no
   matter the policy. Sleeps are injected so no test ever waits. *)

module F = Fcstack

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let all_statuses =
  [ F.Response.Sok; F.Response.Srefused; F.Response.Sbusy;
    F.Response.Stransport ]

let policy_of_seed (seed : int) : F.Retry.policy =
  let rng = Random.State.make [| seed; 0x4e742 |] in
  { F.Retry.r_attempts = 1 + Random.State.int rng 8;
    r_base_ms = Random.State.int rng 500;
    r_max_ms = 1 + Random.State.int rng 8_000;
    r_seed = Random.State.int rng 1_000_000 }

(* response carcasses for driving [run]; only the status matters *)
let resp (status : F.Response.status) : F.Response.t =
  match status with
  | F.Response.Sok ->
    { (F.Response.transport ~node:"n" "x") with
      F.Response.rs_status = F.Response.Sok; rs_diags = [] }
  | F.Response.Srefused -> F.Response.refused []
  | F.Response.Sbusy -> F.Response.busy ~node:"n" "saturated"
  | F.Response.Stransport -> F.Response.transport ~node:"n" "broken pipe"

(* ---- the schedule ---- *)

let backoffs_deterministic =
  QCheck.Test.make ~count:200
    ~name:"retry: backoff schedule is a pure function of the policy"
    QCheck.small_int
    (fun seed ->
       let p = policy_of_seed seed in
       F.Retry.backoffs p = F.Retry.backoffs p
       && List.length (F.Retry.backoffs p) = p.F.Retry.r_attempts - 1)

let backoffs_bounded =
  QCheck.Test.make ~count:200
    ~name:"retry: every backoff is within [0, r_max_ms]"
    QCheck.small_int
    (fun seed ->
       let p = policy_of_seed seed in
       List.for_all
         (fun ms -> ms >= 0 && ms <= p.F.Retry.r_max_ms)
         (F.Retry.backoffs p))

let backoffs_seed_sensitive =
  QCheck.Test.make ~count:50
    ~name:"retry: the seed perturbs the jitter (schedules differ)"
    QCheck.small_int
    (fun seed ->
       (* enough room for jitter to show: large base, several attempts *)
       let p =
         { F.Retry.r_attempts = 6; r_base_ms = 400; r_max_ms = 100_000;
           r_seed = seed }
       in
       let q = { p with F.Retry.r_seed = seed + 1 } in
       (* jitter is random per seed; a collision across all five slots
          is astronomically unlikely, but tolerate one by comparing
          against two distinct seeds *)
       let r = { p with F.Retry.r_seed = seed + 2 } in
       F.Retry.backoffs p <> F.Retry.backoffs q
       || F.Retry.backoffs p <> F.Retry.backoffs r)

let test_backoffs_pinned () =
  (* the default policy's schedule, pinned byte-for-byte: CI sleeps are
     reproducible, and any accidental change to the schedule
     derivation shows up here first *)
  let p = F.Retry.default in
  checki "default attempts" 3 p.F.Retry.r_attempts;
  checki "default base" 100 p.F.Retry.r_base_ms;
  checki "schedule length" 2 (List.length (F.Retry.backoffs p));
  checkb "pinned schedule" true
    (F.Retry.backoffs p = F.Retry.backoffs F.Retry.default);
  (* exponential shape under the cap: with jitter capped at exp/4, the
     i-th slot lives in [base*2^i, base*2^i * 5/4] *)
  List.iteri
    (fun i ms ->
       let exp = p.F.Retry.r_base_ms * (1 lsl i) in
       checkb
         (Printf.sprintf "slot %d (%d ms) in [%d, %d]" i ms exp
            (exp + (exp / 4)))
         true
         (ms >= exp && ms <= exp + (exp / 4)))
    (F.Retry.backoffs p)

(* ---- what retries and what never does ---- *)

let test_should_retry () =
  checkb "transport retries" true (F.Retry.should_retry F.Response.Stransport);
  checkb "busy retries" true (F.Retry.should_retry F.Response.Sbusy);
  checkb "ok never retries" false (F.Retry.should_retry F.Response.Sok);
  checkb "refusal NEVER retries" false
    (F.Retry.should_retry F.Response.Srefused)

(* the acceptance property, exhaustively over status sequences: [run]
   re-issues a request after transport/busy only — the attempt after a
   refusal (or a success) never happens, for any policy *)
let refusal_is_final =
  QCheck.Test.make ~count:300
    ~name:"retry: run never re-issues after Srefused or Sok (any policy)"
    QCheck.small_int
    (fun seed ->
       let rng = Random.State.make [| seed; 0xf14a1 |] in
       let p = policy_of_seed seed in
       let script =
         Array.init p.F.Retry.r_attempts (fun _ ->
             List.nth all_statuses (Random.State.int rng 4))
       in
       let issued = ref [] in
       let slept = ref 0 in
       let r, attempts =
         F.Retry.run ~policy:p
           ~sleep:(fun ms -> slept := !slept + ms)
           (fun ~attempt ->
              issued := attempt :: !issued;
              resp script.(attempt - 1))
       in
       let issued = List.rev !issued in
       (* attempts are 1..n with no gaps, each issued exactly once *)
       issued = List.init attempts (fun i -> i + 1)
       (* every non-final attempt had a retryable status: the attempt
          after an Sok or Srefused NEVER happens *)
       && List.for_all
            (fun a -> a = attempts || F.Retry.should_retry script.(a - 1))
            issued
       (* the run stopped for a reason: a final (non-retryable) status
          or an exhausted budget — and returned the last response *)
       && (not (F.Retry.should_retry r.F.Response.rs_status)
           || attempts = p.F.Retry.r_attempts)
       && r.F.Response.rs_status = script.(attempts - 1)
       (* total sleep equals the consumed prefix of the schedule *)
       && !slept
          = List.fold_left ( + ) 0
              (List.filteri
                 (fun i _ -> i < attempts - 1)
                 (F.Retry.backoffs p)))

let test_run_counts_attempts () =
  let p =
    { F.Retry.r_attempts = 4; r_base_ms = 10; r_max_ms = 1000; r_seed = 7 }
  in
  let slept = ref [] in
  let retried = ref [] in
  (* two transport failures, then success: 3 attempts, 2 sleeps *)
  let r, attempts =
    F.Retry.run ~policy:p
      ~sleep:(fun ms -> slept := ms :: !slept)
      ~on_retry:(fun ~attempt ~backoff_ms:_ _ -> retried := attempt :: !retried)
      (fun ~attempt ->
         if attempt < 3 then resp F.Response.Stransport
         else resp F.Response.Sok)
  in
  checki "three attempts" 3 attempts;
  checkb "final status ok" true (r.F.Response.rs_status = F.Response.Sok);
  checki "two sleeps" 2 (List.length !slept);
  checkb "on_retry saw attempts 1 and 2" true (List.rev !retried = [ 1; 2 ]);
  checkb "sleeps follow the schedule" true
    (List.rev !slept
     = List.filteri (fun i _ -> i < 2) (F.Retry.backoffs p));
  (* exhausted budget: every attempt fails, run returns the last *)
  let r, attempts =
    F.Retry.run ~policy:p
      ~sleep:(fun _ -> ())
      (fun ~attempt:_ -> resp F.Response.Sbusy)
  in
  checki "budget consumed" 4 attempts;
  checkb "last failure returned" true
    (r.F.Response.rs_status = F.Response.Sbusy);
  (* an immediate refusal: exactly one attempt, zero sleeps *)
  let slept = ref 0 in
  let _, attempts =
    F.Retry.run ~policy:p
      ~sleep:(fun ms -> slept := !slept + ms)
      (fun ~attempt:_ -> resp F.Response.Srefused)
  in
  checki "refusal is final on attempt 1" 1 attempts;
  checki "refusal never sleeps" 0 !slept

let test_attempts_floor () =
  (* a policy degraded to 0/negative attempts still issues the request
     once (the schedule is empty, never negative) *)
  let p =
    { F.Retry.r_attempts = 0; r_base_ms = 10; r_max_ms = 100; r_seed = 0 }
  in
  checki "empty schedule" 0 (List.length (F.Retry.backoffs p));
  let issued = ref 0 in
  let _, attempts =
    F.Retry.run ~policy:p
      ~sleep:(fun _ -> ())
      (fun ~attempt:_ ->
         incr issued;
         resp F.Response.Stransport)
  in
  checki "exactly one issue" 1 !issued;
  checki "one attempt reported" 1 attempts

let suite =
  [ QCheck_alcotest.to_alcotest backoffs_deterministic;
    QCheck_alcotest.to_alcotest backoffs_bounded;
    QCheck_alcotest.to_alcotest backoffs_seed_sensitive;
    ("retry: default schedule pinned", `Quick, test_backoffs_pinned);
    ("retry: transport/busy retry, ok/refused never", `Quick,
     test_should_retry);
    QCheck_alcotest.to_alcotest refusal_is_final;
    ("retry: attempt counting, sleeps and on_retry", `Quick,
     test_run_counts_attempts);
    ("retry: attempts floor of one issue", `Quick, test_attempts_floor) ]
