(* Integration tests over the full development chain, including band
   assertions that lock in the *shape* of the paper reproduction
   (EXPERIMENTS.md): who wins, in which direction, by roughly what
   factor. The workload here is smaller than the benchmark's for test
   speed; bands are correspondingly loose. *)

let checkb = Alcotest.check Alcotest.bool

let workload = lazy (Fcstack.Experiments.run_workload ~nodes:20 ~seed:4242 ())

let total (c : Fcstack.Chain.compiler) (f : Fcstack.Experiments.per_compiler -> int) :
  int =
  Fcstack.Experiments.total (Lazy.force workload) c f

let ratio (c : Fcstack.Chain.compiler) (f : Fcstack.Experiments.per_compiler -> int) :
  float =
  float_of_int (total c f) /. float_of_int (total Fcstack.Chain.Cdefault_o0 f)

let test_chain_validation_all () =
  (* every compiler configuration (exact mode) is bit-exact on a sample
     of workload nodes over several cycles; the world battery is
     batched against one compile+layout per (node, compiler) *)
  let program = Scade.Workload.flight_program ~nodes:8 ~seed:11 in
  List.iter
    (fun (_, src) ->
       List.iter
         (fun comp ->
            let b = Fcstack.Chain.build ~exact:true comp src in
            match Fcstack.Chain.validate_chain ~cycles:4 ~worlds:3 b with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg)
         Fcstack.Chain.all_compilers)
    program

(* qcheck trace equivalence, batched: one build per (program, compiler)
   amortized over a battery of worlds — the harness the ROADMAP's
   "batched differential validation" item asks for. Replaces the old
   per-world rebuild pattern. *)
let batched_validation_prop =
  QCheck.Test.make ~count:40
    ~name:"chain: batched differential validation on random programs"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFF) in
       List.for_all
         (fun comp ->
            let b = Fcstack.Chain.build ~exact:true comp p in
            Result.is_ok (Fcstack.Chain.validate_chain ~cycles:2 ~worlds:6 b))
         Fcstack.Chain.all_compilers)

(* mutation check: the batch really exercises its battery — a corrupted
   build must be rejected, and the honest one accepted, by the same
   [~worlds] run *)
let test_batched_validation_catches_corruption () =
  let p =
    Minic.Parser.parse_program
      {| global double g; double m() { return 5.0 -. $g; } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let b = Fcstack.Chain.build ~exact:true Fcstack.Chain.Cvcomp p in
  checkb "honest build passes 8 worlds" true
    (Result.is_ok (Fcstack.Chain.validate_chain ~cycles:2 ~worlds:8 b));
  (* swap the operands of the subtraction: 5.0 -. g becomes g -. 5.0,
     observably different on any world with g <> 2.5; same code size,
     so the original layout stays valid *)
  let changed = ref false in
  let bad_funcs =
    List.map
      (fun f ->
         { f with
           Target.Asm.fn_code =
             List.map
               (fun i ->
                  match i with
                  | Target.Asm.Pfsub (d, a, b) when not !changed ->
                    changed := true;
                    Target.Asm.Pfsub (d, b, a)
                  | _ -> i)
               f.Target.Asm.fn_code })
      b.Fcstack.Chain.b_asm.Target.Asm.pr_funcs
  in
  checkb "program contains the subtraction" true !changed;
  let b' =
    { b with
      Fcstack.Chain.b_asm =
        { b.Fcstack.Chain.b_asm with Target.Asm.pr_funcs = bad_funcs } }
  in
  checkb "corrupted build rejected by the battery" true
    (Result.is_error (Fcstack.Chain.validate_chain ~cycles:2 ~worlds:8 b'))

let test_band_o1_negligible () =
  (* paper: -0.5%; band: within [-3%, 0%] *)
  let r = ratio Fcstack.Chain.Cdefault_o1 (fun p -> p.Fcstack.Experiments.pc_wcet) in
  checkb (Printf.sprintf "O1 WCET ratio %.3f in [0.97, 1.0]" r) true
    (r >= 0.97 && r <= 1.0)

let test_band_vcomp_wcet () =
  (* paper: -12.0%; band: a clear double-digit-scale gain, [-30%, -5%] *)
  let r = ratio Fcstack.Chain.Cvcomp (fun p -> p.Fcstack.Experiments.pc_wcet) in
  checkb (Printf.sprintf "vcomp WCET ratio %.3f in [0.70, 0.95]" r) true
    (r >= 0.70 && r <= 0.95)

let test_band_o2_vs_vcomp () =
  (* The paper (CompCert 1.7) has the fully optimized default (-18.4%)
     ahead of the verified compiler (-12%), and attributes the residual
     gap to the optimizations CompCert then lacked. With GVN-CSE and
     LICM landed (the -O 2 default), vcomp closes that gap on this
     workload: assert the new ordering, and keep it honest — within 5%
     of each other, not a blowout. *)
  let o2 = total Fcstack.Chain.Cdefault_o2 (fun p -> p.Fcstack.Experiments.pc_wcet) in
  let vc = total Fcstack.Chain.Cvcomp (fun p -> p.Fcstack.Experiments.pc_wcet) in
  checkb (Printf.sprintf "vcomp (%d) <= default-O2 (%d)" vc o2) true (vc <= o2);
  checkb
    (Printf.sprintf "gap small: vcomp (%d) >= 0.95 * default-O2 (%d)" vc o2)
    true
    (float_of_int vc >= 0.95 *. float_of_int o2)

let test_band_o2_beats_vcomp_o1 () =
  (* the paper's original shape, pinned under the paper's pipeline:
     with vcomp restricted to -O 1 (constprop + local CSE + deadcode,
     the CompCert 1.7 middle end), the fully optimized default is
     ahead again *)
  let passes = Vcomp.Pass.level 1 in
  let config =
    Fcstack.Toolchain.(with_passes passes default)
  in
  let wr = Fcstack.Experiments.run_workload ~nodes:20 ~seed:4242 ~config () in
  let t c = Fcstack.Experiments.total wr c (fun p -> p.Fcstack.Experiments.pc_wcet) in
  let o2 = t Fcstack.Chain.Cdefault_o2 in
  let vc1 = t Fcstack.Chain.Cvcomp in
  checkb
    (Printf.sprintf "default-O2 (%d) <= vcomp@-O1 (%d)" o2 vc1) true
    (o2 <= vc1)

let test_band_cache_reads () =
  (* paper: -76% cache reads for CompCert; band [-90%, -60%] *)
  let r = ratio Fcstack.Chain.Cvcomp (fun p -> p.Fcstack.Experiments.pc_reads) in
  checkb (Printf.sprintf "vcomp cache-read ratio %.3f in [0.10, 0.40]" r) true
    (r >= 0.10 && r <= 0.40)

let test_band_cache_writes () =
  (* paper: -65%; our pattern baseline spills more, so the band is
     wide: at least -60% *)
  let r = ratio Fcstack.Chain.Cvcomp (fun p -> p.Fcstack.Experiments.pc_writes) in
  checkb (Printf.sprintf "vcomp cache-write ratio %.3f <= 0.40" r) true (r <= 0.40)

let test_band_code_size () =
  (* paper: -26%; our band: at least -25% *)
  let r = ratio Fcstack.Chain.Cvcomp (fun p -> p.Fcstack.Experiments.pc_size) in
  checkb (Printf.sprintf "vcomp size ratio %.3f <= 0.75" r) true (r <= 0.75)

let test_annot_demo () =
  let d = Fcstack.Experiments.run_annot_demo () in
  checkb "annotation comment emitted" true
    (String.length d.Fcstack.Experiments.ad_annot_comment > 0);
  checkb "WCET produced with annotation" true
    (d.Fcstack.Experiments.ad_wcet_with > 0);
  checkb "analysis fails without annotation" true
    (String.length d.Fcstack.Experiments.ad_failure_without > 0
     && not
          (String.equal d.Fcstack.Experiments.ad_failure_without
             "(unexpected: analyzer produced a bound without the annotation)"))

let test_listing_shapes () =
  (* the O0 compile of the listing node contains the pattern sequence;
     the vcomp compile contains no stack traffic at all *)
  let src = Scade.Acg.generate Fcstack.Experiments.listing_node in
  let b0 = Fcstack.Chain.build ~exact:true Fcstack.Chain.Cdefault_o0 src in
  let bv = Fcstack.Chain.build ~exact:true Fcstack.Chain.Cvcomp src in
  let stack_accesses (asm : Target.Asm.program) : int =
    List.fold_left
      (fun acc f ->
         acc
         + List.length
             (List.filter
                (fun i ->
                   match i with
                   | Target.Asm.Plwz (_, Target.Asm.Aind (r, _))
                   | Target.Asm.Pstw (_, Target.Asm.Aind (r, _))
                   | Target.Asm.Plfd (_, Target.Asm.Aind (r, _))
                   | Target.Asm.Pstfd (_, Target.Asm.Aind (r, _)) ->
                     r = Target.Asm.sp
                   | _ -> false)
                f.Target.Asm.fn_code))
      0 asm.Target.Asm.pr_funcs
  in
  checkb "pattern compile round-trips the stack" true
    (stack_accesses b0.Fcstack.Chain.b_asm > 0);
  Alcotest.check Alcotest.int "vcomp compile keeps wires in registers" 0
    (stack_accesses bv.Fcstack.Chain.b_asm)

let test_fcc_roundtrip_via_files () =
  (* fcgen-style: print a node to text, parse it back, compile, compare *)
  let program = Scade.Workload.flight_program ~nodes:2 ~seed:77 in
  List.iter
    (fun (_, src) ->
       let text = Minic.Pp.program_to_string src in
       let src' = Minic.Parser.parse_program text in
       Minic.Typecheck.check_program_exn src';
       let b = Fcstack.Chain.build ~exact:true Fcstack.Chain.Cvcomp src' in
       match Fcstack.Chain.validate_chain b with
       | Ok () -> ()
       | Error msg -> Alcotest.fail msg)
    program

let suite =
  [ ("chain validation across compilers", `Slow, test_chain_validation_all);
    ("band: O1 gain negligible (paper -0.5%)", `Slow, test_band_o1_negligible);
    ("band: vcomp double-digit WCET gain (paper -12%)", `Slow, test_band_vcomp_wcet);
    ("band: vcomp with GVN+LICM catches default-O2", `Slow,
     test_band_o2_vs_vcomp);
    ("band: default-O2 ahead of vcomp at -O 1 (paper -18.4% vs -12%)", `Slow,
     test_band_o2_beats_vcomp_o1);
    ("band: cache reads (paper -76%)", `Slow, test_band_cache_reads);
    ("band: cache writes (paper -65%)", `Slow, test_band_cache_writes);
    ("band: code size (paper -26%)", `Slow, test_band_code_size);
    QCheck_alcotest.to_alcotest batched_validation_prop;
    ("batched validation catches corruption", `Quick,
     test_batched_validation_catches_corruption);
    ("annotation flow demo", `Quick, test_annot_demo);
    ("listing shapes", `Quick, test_listing_shapes);
    ("file round trip through the tools", `Quick, test_fcc_roundtrip_via_files) ]
