(* Tests of the fault-isolation layer: the chaos harness itself, the
   per-knob fuel guards (every unbounded fixpoint refuses instead of
   hanging, and a refusal is never an unsound bound or a cached
   entry), and the containment property that non-failed nodes are
   byte-identical to a fault-free run under any (jobs x cache)
   configuration. *)

let checkb = Alcotest.check Alcotest.bool

let named_workload ~(nodes : int) ~(seed : int) :
  (string * Minic.Ast.program) list =
  List.map
    (fun (n, src) -> (n.Scade.Symbol.n_name, src))
    (Scade.Workload.flight_program ~nodes ~seed)

(* one built node, reused by the fuel tests *)
let built =
  lazy
    (let _, src = List.hd (Scade.Workload.flight_program ~nodes:1 ~seed:77) in
     Fcstack.Chain.build ~exact:true Fcstack.Chain.Cvcomp src)

let analyze_with (fuel : Wcet.Fuel.t) :
  (Wcet.Report.t, string) Result.t =
  let b = Lazy.force built in
  match
    Wcet.Driver.analyze ~fuel b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout
  with
  | r -> Ok r
  | exception Wcet.Driver.Error m -> Error m

let contains (s : string) (sub : string) : bool =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* ---- fuel guards: exhaustion refuses, never hangs or lies ---- *)

let test_widen_fuel_refuses () =
  match analyze_with { Wcet.Fuel.default with Wcet.Fuel.fl_widen = 0 } with
  | Ok _ -> Alcotest.fail "starved widening fixpoint produced a bound"
  | Error m ->
    checkb ("reported as divergence: " ^ m) true (contains m "diverged")

let test_simplex_fuel_refuses () =
  match analyze_with { Wcet.Fuel.default with Wcet.Fuel.fl_simplex = 0 } with
  | Ok _ -> Alcotest.fail "starved simplex produced a bound"
  | Error m ->
    checkb ("reported as divergence: " ^ m) true (contains m "diverged")

let test_bb_fuel_stays_sound () =
  (* branch & bound exhaustion is NOT a refusal: the solver falls back
     to the LP-relaxation bound, which is sound (>= every execution)
     just not exact. The report must say so and still dominate the
     simulator. *)
  match analyze_with { Wcet.Fuel.default with Wcet.Fuel.fl_bb_nodes = 0 } with
  | Error m -> Alcotest.fail ("b&b exhaustion refused: " ^ m)
  | Ok r ->
    let b = Lazy.force built in
    List.iter
      (fun seed ->
         let sim =
           Fcstack.Chain.simulate b (Minic.Interp.seeded_world ~seed ())
         in
         let cycles = sim.Target.Sim.rr_stats.Target.Sim.cycles in
         checkb
           (Printf.sprintf "relaxation bound %d >= simulated %d"
              r.Wcet.Report.rp_wcet cycles)
           true
           (r.Wcet.Report.rp_wcet >= cycles))
      [ 1; 2; 3 ]

let test_default_fuel_unchanged () =
  (* the default budgets equal the old hard-coded limits: explicit
     default fuel and implicit fuel must produce identical reports *)
  Alcotest.check Alcotest.bool "default fuel = no fuel argument" true
    (analyze_with Wcet.Fuel.default
     = (let b = Lazy.force built in
        match
          Wcet.Driver.analyze b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout
        with
        | r -> Ok r
        | exception Wcet.Driver.Error m -> Error m))

let test_sim_fuel_diag () =
  (* a starved simulator budget surfaces as a Sim-stage diagnostic from
     the contained chain, never as an escaping exception *)
  let name, src = List.hd (named_workload ~nodes:1 ~seed:77) in
  let config =
    Fcstack.Toolchain.of_session_request Fcstack.Toolchain.default_session
      (Fcstack.Toolchain.request_opts ~worlds:2 ~sim_fuel:1 ())
  in
  match Fcstack.Par.chain_node ~config name src with
  | Ok _ -> Alcotest.fail "1-step simulation budget succeeded"
  | Error d ->
    Alcotest.check Alcotest.string "Sim stage" "sim"
      (Fcstack.Diag.stage_name d.Fcstack.Diag.d_stage);
    checkb ("mentions the budget: " ^ d.Fcstack.Diag.d_message) true
      (contains d.Fcstack.Diag.d_message "budget")

(* ---- refusals and the cache ---- *)

let test_refusal_never_cached () =
  (* a fuel-starved refusal must not poison the cache: analyzing under
     default fuel afterwards (same cache) succeeds, and the budgets
     live in the content key so the two runs never share entries *)
  let cache = Wcet.Memo.create () in
  let b = Lazy.force built in
  let starved = Wcet.Fuel.starved in
  (match
     Wcet.Driver.analyze ~cache ~fuel:starved b.Fcstack.Chain.b_asm
       b.Fcstack.Chain.b_layout
   with
   | _ -> Alcotest.fail "starved analysis produced a bound"
   | exception Wcet.Driver.Error _ -> ());
  let entries_after_refusal = Wcet.Memo.length cache in
  Alcotest.check Alcotest.int "refusal cached nothing for the entry" 0
    entries_after_refusal;
  (match
     Wcet.Driver.analyze ~cache b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout
   with
   | r -> checkb "default fuel succeeds on the same cache" true
            (r.Wcet.Report.rp_wcet > 0)
   | exception Wcet.Driver.Error m ->
     Alcotest.fail ("default-fuel analysis failed after a refusal: " ^ m));
  (* and the refusal still refuses — nothing was served across budgets *)
  match
    Wcet.Driver.analyze ~cache ~fuel:starved b.Fcstack.Chain.b_asm
      b.Fcstack.Chain.b_layout
  with
  | _ -> Alcotest.fail "starved analysis served a cached success"
  | exception Wcet.Driver.Error _ -> ()

let test_fuel_widens_memo_key () =
  let b = Lazy.force built in
  let f = List.hd b.Fcstack.Chain.b_asm.Target.Asm.pr_funcs in
  let lay = b.Fcstack.Chain.b_layout in
  let k_default = Wcet.Memo.key lay ~base:0 f in
  let k_same = Wcet.Memo.key ~fuel:Wcet.Fuel.default lay ~base:0 f in
  let k_starved = Wcet.Memo.key ~fuel:Wcet.Fuel.starved lay ~base:0 f in
  checkb "default fuel = implicit fuel" true
    (Wcet.Memo.digest k_default = Wcet.Memo.digest k_same);
  checkb "different budgets, different keys" true
    (Wcet.Memo.digest k_default <> Wcet.Memo.digest k_starved)

(* ---- exit-code contract ---- *)

let test_exit_codes () =
  let check = Alcotest.check Alcotest.int in
  check "all ok" 0 (Fcstack.Diag.exit_code ~total:4 ~failed:0);
  check "partial" 1 (Fcstack.Diag.exit_code ~total:4 ~failed:3);
  check "total failure" 2 (Fcstack.Diag.exit_code ~total:4 ~failed:4);
  check "single-file failure is total" 2
    (Fcstack.Diag.exit_code ~total:1 ~failed:1);
  check "empty run is ok" 0 (Fcstack.Diag.exit_code ~total:0 ~failed:0)

(* ---- the chaos matrix ---- *)

let test_chaos_matrix () =
  let r = Fcstack.Chaos.run ~seed:20260806 ~nodes:10 ~victims:3 () in
  Alcotest.check Alcotest.int "three victims" 3
    (List.length r.Fcstack.Chaos.ch_victims);
  Alcotest.check (Alcotest.list Alcotest.string) "no containment violations"
    [] r.Fcstack.Chaos.ch_problems

(* the same seeded matrix must hold under the OMT and Both engines:
   fault containment is engine-independent (survivors byte-identical
   within the leg's engine, victims named, store corruption a miss) *)
let test_chaos_matrix_engines () =
  List.iter
    (fun engine ->
       let r =
         Fcstack.Chaos.run ~seed:20260806 ~nodes:6 ~victims:2 ~engine ()
       in
       Alcotest.check Alcotest.int
         (Wcet.Report.engine_name engine ^ ": two victims") 2
         (List.length r.Fcstack.Chaos.ch_victims);
       Alcotest.check (Alcotest.list Alcotest.string)
         (Wcet.Report.engine_name engine ^ ": no containment violations")
         [] r.Fcstack.Chaos.ch_problems)
    [ Wcet.Report.Omt; Wcet.Report.Both ]

(* the server leg: a real fcd child SIGKILLed mid-request-stream must
   surface as a transport failure, the retry after restart must
   succeed against the same disk store, and every final response must
   be byte-identical to a cold in-process batch (the daemon binary is
   located relative to the test executable inside the dune tree) *)
let test_chaos_server_leg () =
  match Fcstack.Service.sibling_exe "fcd.exe" with
  | None -> Alcotest.fail "fcd.exe not found next to the test executable"
  | Some fcd_exe ->
    let r =
      Fcstack.Chaos.run ~seed:20260806 ~nodes:6 ~victims:2 ~fcd_exe ()
    in
    (* the full hostile-input matrix ran: kill/restart plus the four
       resilience legs, and the always-on store-fault legs *)
    List.iter
      (fun leg ->
         Alcotest.check Alcotest.bool (leg ^ " leg ran") true
           (List.mem leg r.Fcstack.Chaos.ch_legs))
      [ "fcd-kill-restart"; "oversized-frame"; "slow-loris";
        "sigstop-deadline"; "kill-under-load"; "truncated-store";
        "enospc-store" ];
    Alcotest.check (Alcotest.list Alcotest.string) "no containment violations"
      [] r.Fcstack.Chaos.ch_problems

(* ---- containment property: survivors are byte-identical ---- *)

let survivors_identical_prop =
  QCheck.Test.make ~count:4
    ~name:"chaos: survivors byte-identical across jobs x cache"
    QCheck.small_int
    (fun seed ->
       let nodes = 5 in
       let named = named_workload ~nodes ~seed:(3000 + seed) in
       let plan = Fcstack.Chaos.make_plan ~seed ~nodes ~victims:2 in
       let indexed = List.mapi (fun i x -> (i, x)) named in
       let run_leg (jobs : int) (cache : Wcet.Memo.t option) =
         let config =
           Fcstack.Toolchain.of_session_request
             (Fcstack.Toolchain.session ~jobs ?cache ())
             (Fcstack.Toolchain.request_opts ~worlds:2 ())
         in
         Fcstack.Par.map_list ~jobs
           (fun (i, (name, src)) ->
              match List.assoc_opt i plan with
              | None -> Fcstack.Par.chain_node ~config name src
              | Some fault ->
                let config =
                  if fault = Fcstack.Chaos.Ffuel then
                    { config with
                      Fcstack.Toolchain.analysis_fuel = Wcet.Fuel.starved }
                  else config
                in
                Fcstack.Par.chain_node ~config name
                  (Fcstack.Chaos.apply_fault fault src))
           indexed
       in
       let reference =
         List.map
           (fun (name, src) ->
              match
                Fcstack.Par.chain_node
                  ~config:
                    (Fcstack.Toolchain.of_session_request
                       Fcstack.Toolchain.default_session
                       (Fcstack.Toolchain.request_opts ~worlds:2 ()))
                  name src
              with
              | Ok r -> Fcstack.Chaos.render_result r
              | Error d ->
                QCheck.Test.fail_reportf "reference failed: %s"
                  (Fcstack.Diag.to_string d))
           named
       in
       List.for_all
         (fun outcomes ->
            List.for_all2
              (fun (i, (name, _)) outcome ->
                 match List.assoc_opt i plan, outcome with
                 | None, Ok r ->
                   Fcstack.Chaos.render_result r = List.nth reference i
                 | Some _, Error d -> d.Fcstack.Diag.d_node = name
                 | None, Error _ | Some _, Ok _ -> false)
              indexed outcomes)
         [ run_leg 1 None;
           run_leg 4 None;
           run_leg 1 (Some (Wcet.Memo.create ()));
           run_leg 4 (Some (Wcet.Memo.create ())) ])

let suite =
  [ ("chaos: starved widening fixpoint refuses", `Quick,
     test_widen_fuel_refuses);
    ("chaos: starved simplex refuses", `Quick, test_simplex_fuel_refuses);
    ("chaos: b&b exhaustion falls back to a sound bound", `Quick,
     test_bb_fuel_stays_sound);
    ("chaos: default fuel = old hard-coded limits", `Quick,
     test_default_fuel_unchanged);
    ("chaos: starved simulator budget is a Sim diagnostic", `Quick,
     test_sim_fuel_diag);
    ("chaos: a refusal is never cached", `Quick, test_refusal_never_cached);
    ("chaos: fuel budgets widen the memo key", `Quick,
     test_fuel_widens_memo_key);
    ("chaos: exit-code contract", `Quick, test_exit_codes);
    ("chaos: full fault-injection matrix", `Slow, test_chaos_matrix);
    ("chaos: matrix holds under the OMT and Both engines", `Slow,
     test_chaos_matrix_engines);
    ("chaos: fcd kill/restart server leg", `Slow, test_chaos_server_leg);
    QCheck_alcotest.to_alcotest survivors_identical_prop ]
