(* Tests for the verified-style compiler: selection, optimization
   passes (each under its translation validator), register allocation,
   and full-chain semantic preservation on random programs. *)

let checkb = Alcotest.check Alcotest.bool

let worlds (seed : int) = Minic.Interp.seeded_world ~seed ()

(* full-chain equivalence: interpreter vs simulator *)
let chain_equal ?(cycles = 3)
    (compile : Minic.Ast.program -> Target.Asm.program)
    (p : Minic.Ast.program) (seed : int) : bool =
  let asm = compile p in
  let lay = Target.Layout.build p asm in
  let ri = Minic.Interp.run_cycles p (worlds seed) ~cycles in
  let rs =
    (Target.Sim.run ~cycles ~source:p asm lay (worlds seed) []).Target.Sim.rr_result
  in
  Minic.Interp.result_equal ri rs

(* ---- selection ---- *)

let selection_preserves_prop =
  QCheck.Test.make ~count:100 ~name:"selection: RTL = source semantics"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       let ri = Minic.Interp.run_cycle p (worlds seed) in
       let rr = Vcomp.Rtl_interp.run rtl (worlds seed) [] in
       Minic.Interp.result_equal ri rr)

(* ---- optimization passes under their validators ---- *)

let pass_preserves (name : string) (pass : Vcomp.Rtl.program -> Vcomp.Rtl.program) =
  QCheck.Test.make ~count:80 ~name:(name ^ ": validated on random programs")
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       let before = Vcomp.Rtl.copy_program rtl in
       let after = pass rtl in
       (* the validator raises on any behaviour change *)
       Vcomp.Validate.check_pass ~pass:name ~before ~after;
       (* and the result still matches the source *)
       let ri = Minic.Interp.run_cycle p (worlds seed) in
       let rr = Vcomp.Rtl_interp.run after (worlds seed) [] in
       Minic.Interp.result_equal ri rr)

let constprop_prop = pass_preserves "constprop" Vcomp.Constprop.transform
let cse_prop = pass_preserves "cse" Vcomp.Cse.transform
let gvn_prop = pass_preserves "gvn" (fun p -> Vcomp.Gvn.transform p)
let licm_prop = pass_preserves "licm" (fun p -> Vcomp.Licm.transform p)

(* gvn after the local passes, like the real pipeline order *)
let gvn_after_cse_prop =
  QCheck.Test.make ~count:80 ~name:"gvn after constprop+cse: validated"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       let rtl = Vcomp.Cse.transform (Vcomp.Constprop.transform rtl) in
       let before = Vcomp.Rtl.copy_program rtl in
       let after = Vcomp.Gvn.transform rtl in
       Vcomp.Validate.check_pass ~pass:"gvn" ~before ~after;
       true)

let deadcode_prop =
  QCheck.Test.make ~count:80 ~name:"deadcode after cse: validated"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       let rtl = Vcomp.Cse.transform rtl in
       let before = Vcomp.Rtl.copy_program rtl in
       let after = Vcomp.Deadcode.transform rtl in
       Vcomp.Validate.check_pass ~pass:"deadcode" ~before ~after;
       true)

(* constprop folds a fully constant computation to a constant *)
let test_constprop_folds () =
  let p =
    Minic.Parser.parse_program
      {| int m() { var int a; var int b; a = 6; b = 7; return a * b; } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let rtl = Vcomp.Selection.trans_program p in
  let rtl = Vcomp.Constprop.transform rtl in
  let f = List.hd rtl.Vcomp.Rtl.p_funcs in
  let found_const_42 = ref false in
  List.iter
    (fun n ->
       match Vcomp.Rtl.get_instr f n with
       | Vcomp.Rtl.Iop (Vcomp.Rtl.Ointconst 42l, _, _, _) ->
         found_const_42 := true
       | _ -> ())
    (Vcomp.Rtl.reverse_postorder f);
  checkb "6*7 folded to 42" true !found_const_42

(* cse: the duplicate load disappears after cse+deadcode *)
let test_cse_removes_duplicate_load () =
  let p =
    Minic.Parser.parse_program
      {| global double g; double m() { return $g +. $g; } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let count_loads rtl =
    let f = List.hd rtl.Vcomp.Rtl.p_funcs in
    List.length
      (List.filter
         (fun n ->
            match Vcomp.Rtl.get_instr f n with
            | Vcomp.Rtl.Iload _ -> true
            | _ -> false)
         (Vcomp.Rtl.reverse_postorder f))
  in
  let rtl = Vcomp.Selection.trans_program p in
  Alcotest.check Alcotest.int "two loads before" 2 (count_loads rtl);
  let rtl = Vcomp.Deadcode.transform (Vcomp.Cse.transform rtl) in
  Alcotest.check Alcotest.int "one load after" 1 (count_loads rtl)

(* ---- liveness: worklist vs naive fixpoint ---- *)

let liveness_prop =
  QCheck.Test.make ~count:60 ~name:"liveness: worklist = naive fixpoint"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       List.for_all
         (fun f ->
            let fast = Vcomp.Liveness.analyze f in
            let slow = Vcomp.Liveness.analyze_naive f in
            List.for_all
              (fun n ->
                 Vcomp.Liveness.RegSet.equal
                   (Vcomp.Liveness.live_after fast n)
                   (Vcomp.Liveness.live_after slow n))
              (Vcomp.Rtl.reverse_postorder f))
         rtl.Vcomp.Rtl.p_funcs)

(* ---- register allocation ---- *)

let regalloc_valid_prop =
  QCheck.Test.make ~count:80 ~name:"regalloc: validator accepts all allocations"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       List.for_all
         (fun f ->
            let res = Vcomp.Regalloc.allocate f in
            match Vcomp.Regalloc.verify f res with
            | Ok () -> true
            | Error _ -> false)
         rtl.Vcomp.Rtl.p_funcs)

(* mutation testing of the validator: merging an interfering pair must
   be rejected *)
let regalloc_mutation_prop =
  QCheck.Test.make ~count:60 ~name:"regalloc: corrupted allocation rejected"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       let rtl = Vcomp.Selection.trans_program p in
       let f = List.hd rtl.Vcomp.Rtl.p_funcs in
       let res = Vcomp.Regalloc.allocate f in
       (* find an interfering pair with different locations *)
       let victim = ref None in
       Hashtbl.iter
         (fun a neighbors ->
            if !victim = None then
              Vcomp.Regalloc.RegSet.iter
                (fun b ->
                   if !victim = None
                      && Vcomp.Rtl.reg_class f a = Vcomp.Rtl.reg_class f b
                      && not
                           (Vcomp.Regalloc.loc_equal
                              (Vcomp.Regalloc.location res a)
                              (Vcomp.Regalloc.location res b)) then
                     victim := Some (a, b))
                neighbors)
         res.Vcomp.Regalloc.ra_graph.Vcomp.Regalloc.g_adj;
       match !victim with
       | None -> true (* nothing to corrupt in a tiny function *)
       | Some (a, b) ->
         Hashtbl.replace res.Vcomp.Regalloc.ra_alloc a
           (Vcomp.Regalloc.location res b);
         (match Vcomp.Regalloc.verify f res with
          | Ok () -> false (* must be rejected *)
          | Error _ -> true))

(* ---- full chain ---- *)

let full_chain_prop =
  QCheck.Test.make ~count:120 ~name:"vcomp: machine = source on random programs"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFFF) in
       chain_equal
         (Vcomp.Driver.compile ~options:Vcomp.Driver.no_validation)
         p seed)

let full_chain_validated_prop =
  QCheck.Test.make ~count:30
    ~name:"vcomp: per-pass validators pass on random programs"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFF) in
       ignore (Vcomp.Driver.compile p); (* validators on: raises on failure *)
       true)

(* NaN behaviour through the whole chain *)
let test_nan_comparisons_compiled () =
  let p =
    Minic.Parser.parse_program
      {| global double g;
         double m() {
           var double n; var double r;
           n = 0x0p+0 /. 0x0p+0;
           if (n <=. 1.0) { r = 1.0; } else { r = 2.0; }
           if (n >=. 1.0) { r = r +. 10.0; } else { r = r +. 20.0; }
           if (n !=. n) { r = r +. 100.0; } else { r = r +. 200.0; }
           return r;
         } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  List.iter
    (fun (name, compile) ->
       checkb name true (chain_equal compile p 1))
    [ ("vcomp NaN", Vcomp.Driver.compile ~options:Vcomp.Driver.no_validation);
      ("cotsc O0 NaN", Cotsc.Driver.compile ~level:Cotsc.Driver.Onone ~contract_fma:false);
      ("cotsc O2 NaN",
       Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull ~contract_fma:false) ]

(* ---- the pass manager ---- *)

(* a deliberately wrong rewrite must be caught by the per-pass
   validator: [Pass.run_pipeline] wraps every pass in
   [Validate.check_pass], so a miscompiling pass cannot slip through
   when validation is on *)
let test_wrong_rewrite_caught () =
  let p =
    Minic.Parser.parse_program
      {| global double g; double m() { return 5.0 -. $g; } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let rtl = Vcomp.Selection.trans_program p in
  let before = Vcomp.Rtl.copy_program rtl in
  (* "optimize" by swapping the operands of the subtraction — the
     classic wrong-but-plausible strength rewrite *)
  let f = List.hd rtl.Vcomp.Rtl.p_funcs in
  let corrupted = ref false in
  List.iter
    (fun n ->
       match Vcomp.Rtl.get_instr f n with
       | Vcomp.Rtl.Iop (Vcomp.Rtl.Ofsub, [ a; b ], d, s) when not !corrupted ->
         corrupted := true;
         Vcomp.Rtl.set_instr f n (Vcomp.Rtl.Iop (Vcomp.Rtl.Ofsub, [ b; a ], d, s))
       | _ -> ())
    (Vcomp.Rtl.reverse_postorder f);
  checkb "found a subtraction to corrupt" true !corrupted;
  checkb "validator rejects the wrong rewrite" true
    (match Vcomp.Validate.check_pass ~pass:"evil" ~before ~after:rtl with
     | () -> false
     | exception Vcomp.Validate.Validation_failed _ -> true)

(* GVN deduplicates repeated float constants across blocks (the local
   CSE misses them once control flow splits) *)
let test_gvn_dedups_float_constants () =
  let p =
    Minic.Parser.parse_program
      {| global double g; global double h;
         double m() {
           $h = $g *. 2.5;
           if ($g <. 1.0) { $h = $h +. 2.5; } else { $h = $h -. 2.5; }
           return $h *. 2.5;
         } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let count_fconsts rtl =
    let f = List.hd rtl.Vcomp.Rtl.p_funcs in
    List.length
      (List.filter
         (fun n ->
            match Vcomp.Rtl.get_instr f n with
            | Vcomp.Rtl.Iop (Vcomp.Rtl.Ofloatconst _, _, _, _) -> true
            | _ -> false)
         (Vcomp.Rtl.reverse_postorder f))
  in
  let rtl = Vcomp.Selection.trans_program p in
  let without =
    count_fconsts
      (Vcomp.Deadcode.transform
         (Vcomp.Cse.transform (Vcomp.Rtl.copy_program rtl)))
  in
  let with_gvn =
    count_fconsts
      (Vcomp.Deadcode.transform (Vcomp.Gvn.transform (Vcomp.Cse.transform rtl)))
  in
  checkb
    (Printf.sprintf "gvn reduces float-const ops (%d -> %d)" without with_gvn)
    true
    (with_gvn < without)

(* LICM hoists the invariant multiply out of the loop: the WCET bound
   (which charges the loop body per iteration) must strictly improve *)
let test_licm_improves_loop_wcet () =
  let p =
    Minic.Parser.parse_program
      {| global double g; global double s;
         double m() {
           var int i;
           for (i = 0; i < 16) { $s = $s +. ($g *. 2.0 *. 4.0); }
           return $s;
         } main m; |}
  in
  Minic.Typecheck.check_program_exn p;
  let wcet options =
    let asm = Vcomp.Driver.compile ~options p in
    let lay = Target.Layout.build p asm in
    (Wcet.Driver.analyze
       ~spec:("vcomp:" ^ Vcomp.Pass.spec options) asm lay)
      .Wcet.Report.rp_wcet
  in
  let off = wcet Vcomp.Driver.{ no_validation with opt_licm = false } in
  let on_ = wcet Vcomp.Driver.no_validation in
  checkb (Printf.sprintf "licm tightens the bound (%d < %d)" on_ off) true
    (on_ < off)

(* spec strings round-trip through the parser *)
let test_pass_spec_roundtrip () =
  let check_rt (o : Vcomp.Pass.options) =
    match Vcomp.Pass.of_spec (Vcomp.Pass.spec o) with
    | Ok o' ->
      Alcotest.check Alcotest.string "spec round-trips"
        (Vcomp.Pass.spec o) (Vcomp.Pass.spec o')
    | Error e -> Alcotest.fail e
  in
  List.iter check_rt
    [ Vcomp.Pass.default_options;
      Vcomp.Pass.all_off;
      Vcomp.Pass.level 0;
      Vcomp.Pass.level 1;
      Vcomp.Pass.level 2;
      { Vcomp.Pass.default_options with Vcomp.Pass.opt_licm = false };
      { Vcomp.Pass.default_options with Vcomp.Pass.opt_gvn = false } ];
  checkb "unknown pass rejected" true
    (Result.is_error (Vcomp.Pass.of_spec "constprop,vectorize"));
  checkb "level 1 disables gvn" true
    (not (Vcomp.Pass.level 1).Vcomp.Pass.opt_gvn);
  checkb "level 2 enables licm" true (Vcomp.Pass.level 2).Vcomp.Pass.opt_licm

(* exhausted fuel skips the pass instead of rewriting from an
   unconverged analysis: the output still matches the source *)
let starved_passes_prop =
  QCheck.Test.make ~count:40 ~name:"gvn/licm with starved fuel: still correct"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFF) in
       chain_equal
         (Vcomp.Driver.compile
            ~options:Vcomp.Driver.{ no_validation with opt_fuel = 3 })
         p seed)

(* ablation configurations stay correct *)
let ablation_chain_prop =
  QCheck.Test.make ~count:40 ~name:"vcomp ablations: still semantics-preserving"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFF) in
       List.for_all
         (fun options ->
            chain_equal (Vcomp.Driver.compile ~options) p seed)
         [ Vcomp.Driver.{ no_validation with opt_constprop = false };
           Vcomp.Driver.{ no_validation with opt_cse = false };
           Vcomp.Driver.{ no_validation with opt_gvn = false };
           Vcomp.Driver.{ no_validation with opt_licm = false };
           Vcomp.Driver.{ no_validation with opt_deadcode = false };
           { Vcomp.Pass.all_off with Vcomp.Pass.opt_validate = false } ])

let suite =
  [ QCheck_alcotest.to_alcotest selection_preserves_prop;
    QCheck_alcotest.to_alcotest constprop_prop;
    QCheck_alcotest.to_alcotest cse_prop;
    QCheck_alcotest.to_alcotest gvn_prop;
    QCheck_alcotest.to_alcotest licm_prop;
    QCheck_alcotest.to_alcotest gvn_after_cse_prop;
    QCheck_alcotest.to_alcotest deadcode_prop;
    ("constprop folds constants", `Quick, test_constprop_folds);
    ("cse removes duplicate loads", `Quick, test_cse_removes_duplicate_load);
    QCheck_alcotest.to_alcotest liveness_prop;
    QCheck_alcotest.to_alcotest regalloc_valid_prop;
    QCheck_alcotest.to_alcotest regalloc_mutation_prop;
    QCheck_alcotest.to_alcotest full_chain_prop;
    QCheck_alcotest.to_alcotest full_chain_validated_prop;
    ("NaN comparisons through the chain", `Quick, test_nan_comparisons_compiled);
    ("wrong rewrite caught by the pass validator", `Quick,
     test_wrong_rewrite_caught);
    ("gvn dedups float constants across blocks", `Quick,
     test_gvn_dedups_float_constants);
    ("licm tightens the loop WCET bound", `Quick, test_licm_improves_loop_wcet);
    ("pass spec round-trips", `Quick, test_pass_spec_roundtrip);
    QCheck_alcotest.to_alcotest starved_passes_prop;
    QCheck_alcotest.to_alcotest ablation_chain_prop ]
