(* Tests of the second WCET engine (Wcet.Smt, optimization modulo
   theory) and its differential oracle against the structural IPET
   engine: on any program the three-way chain
       simulated cycles <= OMT bound <= IPET bound
   must hold (the qcheck contract, over random programs x compilers),
   a hand-built infeasible-path node must be *strictly* tighter under
   OMT (the engine's reason to exist, pinned as a unit test), the
   [Both] report must agree with the two single-engine runs, and a
   starved OMT fuel budget must refuse — never mis-bound, never cache. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let build_src (text : string) : Minic.Ast.program =
  let p = Minic.Parser.parse_program text in
  Minic.Typecheck.check_program_exn p;
  p

let contains (s : string) (sub : string) : bool =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let analyze ?fuel ~(engine : Wcet.Report.engine) (b : Fcstack.Chain.built) :
  Wcet.Report.t =
  Wcet.Driver.analyze ?fuel ~engine b.Fcstack.Chain.b_asm
    b.Fcstack.Chain.b_layout

(* ---- the three-way oracle, on random programs ---- *)

(* sim <= omt <= ipet on every random program under every compiler
   configuration (the -O levels are the configurations). A refusal is
   out of the oracle's scope — but it must then refuse under *both*
   engines' common phases, which [cached = plain]-style equality over
   results-or-errors captures below. *)
let three_way_oracle_prop =
  QCheck.Test.make ~count:30
    ~name:"smt: sim <= OMT <= IPET on random programs x compilers"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFF) in
       List.for_all
         (fun comp ->
            let b = Fcstack.Chain.build ~exact:true comp p in
            match analyze ~engine:Wcet.Report.Omt b with
            | omt ->
              let ipet = analyze ~engine:Wcet.Report.Ipet b in
              omt.Wcet.Report.rp_wcet <= ipet.Wcet.Report.rp_wcet
              && List.for_all
                   (fun s ->
                      let sim =
                        Fcstack.Chain.simulate b
                          (Minic.Interp.seeded_world ~seed:s ())
                      in
                      omt.Wcet.Report.rp_wcet
                      >= sim.Target.Sim.rr_stats.Target.Sim.cycles)
                   [ 1; 2; 3 ]
            | exception Wcet.Driver.Error _ -> true)
         Fcstack.Chain.all_compilers)

(* [Both] is one analysis carrying both bounds: it must agree exactly
   with the two single-engine runs, and select the OMT bound. *)
let both_agrees_prop =
  QCheck.Test.make ~count:20
    ~name:"smt: Both = (Ipet bound, Omt bound) of the single-engine runs"
    QCheck.small_int
    (fun seed ->
       let p = Testlib.Gen.gen_program (seed land 0xFFF) in
       List.for_all
         (fun comp ->
            let b = Fcstack.Chain.build ~exact:true comp p in
            match analyze ~engine:Wcet.Report.Both b with
            | both ->
              let ipet = analyze ~engine:Wcet.Report.Ipet b in
              let omt = analyze ~engine:Wcet.Report.Omt b in
              both.Wcet.Report.rp_wcet = omt.Wcet.Report.rp_wcet
              && both.Wcet.Report.rp_wcet_ipet
                 = Some ipet.Wcet.Report.rp_wcet
              && both.Wcet.Report.rp_wcet_omt = Some omt.Wcet.Report.rp_wcet
              && both.Wcet.Report.rp_omt_cuts = omt.Wcet.Report.rp_omt_cuts
            | exception Wcet.Driver.Error _ -> true)
         Fcstack.Chain.all_compilers)

(* ---- the headline win: an infeasible path, strictly tighter ---- *)

(* The classic pair: [x > 10] and [x < 5] cannot both hold, yet each
   guards real work, so the structural ILP charges both arms. The -O 0
   pattern compiler keeps every test as a branch over stack slots, so
   the cut derivation sees both guards. *)
let infeasible_src = {|
  volatile in double s_in;
  volatile out double s_out;
  void s_main() {
    var double x;
    var double y;
    x = volatile(s_in);
    y = 0.0;
    if (x >. 10.0) { y = x +. 1.0; } else { skip; }
    if (x <. 5.0)  { y = y +. 2.0; } else { skip; }
    volatile(s_out) = y;
    skip;
  }
  main s_main;
|}

let infeasible_built =
  lazy
    (Fcstack.Chain.build ~exact:true Fcstack.Chain.Cdefault_o0
       (build_src infeasible_src))

let test_strictly_tighter () =
  let b = Lazy.force infeasible_built in
  let r = analyze ~engine:Wcet.Report.Both b in
  let ipet = Option.get r.Wcet.Report.rp_wcet_ipet in
  let omt = Option.get r.Wcet.Report.rp_wcet_omt in
  checkb "at least one conflict cut derived" true
    (r.Wcet.Report.rp_omt_cuts >= 1);
  checkb
    (Printf.sprintf "omt (%d) strictly below ipet (%d)" omt ipet)
    true (omt < ipet);
  checki "the report selects the OMT bound" omt r.Wcet.Report.rp_wcet;
  (* and strictly tighter is still sound: the bound dominates the
     simulator on every tested world *)
  List.iter
    (fun seed ->
       let sim = Fcstack.Chain.simulate b (Minic.Interp.seeded_world ~seed ()) in
       let cycles = sim.Target.Sim.rr_stats.Target.Sim.cycles in
       checkb
         (Printf.sprintf "omt %d >= simulated %d" omt cycles)
         true (omt >= cycles))
    [ 1; 2; 3; 4; 5 ]

(* the engine line renders the cuts in Both mode *)
let test_report_renders_engine () =
  let b = Lazy.force infeasible_built in
  let r = analyze ~engine:Wcet.Report.Both b in
  let text = Wcet.Report.to_string r in
  checkb "report names both engines" true (contains text "both");
  checkb "report shows the oracle" true (contains text "omt <= ipet");
  let r0 = analyze ~engine:Wcet.Report.Ipet b in
  checkb "default engine keeps the legacy report shape" false
    (contains (Wcet.Report.to_string r0) "engine")

(* ---- fuel: OMT exhaustion refuses, and is never cached ---- *)

let test_omt_fuel_refuses_uncached () =
  let b = Lazy.force infeasible_built in
  let starved = { Wcet.Fuel.default with Wcet.Fuel.fl_omt = 0 } in
  let cache = Wcet.Memo.create () in
  let attempt () =
    match
      Wcet.Driver.analyze ~cache ~fuel:starved ~engine:Wcet.Report.Omt
        b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout
    with
    | _ -> Alcotest.fail "starved OMT search produced a bound"
    | exception Wcet.Driver.Error m ->
      checkb ("reported as divergence: " ^ m) true (contains m "diverged");
      checkb ("names the omt budget: " ^ m) true (contains m "omt")
  in
  attempt ();
  attempt ();
  let st = Wcet.Memo.stats cache in
  checki "refusals never cached" 0 st.Wcet.Report.st_entries;
  checki "each attempt re-ran" 2 st.Wcet.Report.st_misses;
  (* the IPET engine never touches the OMT budget: same fuel, fine *)
  match
    Wcet.Driver.analyze ~fuel:starved ~engine:Wcet.Report.Ipet
      b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout
  with
  | r -> checkb "ipet unaffected by omt starvation" true
           (r.Wcet.Report.rp_wcet > 0)
  | exception Wcet.Driver.Error m ->
    Alcotest.fail ("ipet refused under omt starvation: " ^ m)

(* a cut-free function runs zero OMT queries, so even a starved budget
   degenerates to IPET exactly (no gratuitous refusals) *)
let test_no_cuts_no_queries () =
  let src =
    build_src {| global double g; void m() { $g = $g +. 1.0; } main m; |}
  in
  let b = Fcstack.Chain.build ~exact:true Fcstack.Chain.Cvcomp src in
  let starved = { Wcet.Fuel.default with Wcet.Fuel.fl_omt = 0 } in
  let omt =
    Wcet.Driver.analyze ~fuel:starved ~engine:Wcet.Report.Omt
      b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout
  in
  let ipet = analyze ~engine:Wcet.Report.Ipet b in
  checki "straight-line: omt = ipet" ipet.Wcet.Report.rp_wcet
    omt.Wcet.Report.rp_wcet;
  checki "no cuts" 0 omt.Wcet.Report.rp_omt_cuts

let suite =
  [ QCheck_alcotest.to_alcotest three_way_oracle_prop;
    QCheck_alcotest.to_alcotest both_agrees_prop;
    ("smt: infeasible path strictly tighter under OMT", `Quick,
     test_strictly_tighter);
    ("smt: report renders the engine line", `Quick,
     test_report_renders_engine);
    ("smt: starved OMT budget refuses and is never cached", `Quick,
     test_omt_fuel_refuses_uncached);
    ("smt: cut-free analysis spends no OMT fuel", `Quick,
     test_no_cuts_no_queries) ]
