(* Tests of the persistent on-disk analysis store (Wcet.Store beneath
   Wcet.Memo): analyses survive across cache instances (the
   cross-process contract), warm == cold == uncached results (qcheck),
   corrupted/truncated/stale entries are silently misses that
   re-analyze correctly (fault injection), the LRU GC respects recency,
   and two Domains over independent handles to one directory never
   disagree with the sequential reference. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---- scratch directories ---- *)

let dir_counter = ref 0

let fresh_dir () : string =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "vericomp-store-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf (path : string) : unit =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with _ -> ())
  | _ -> ( try Sys.remove path with _ -> ())
  | exception _ -> ()

let with_dir (f : string -> 'a) : 'a =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file (path : string) (s : string) : unit =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* entry file of a hex digest, per the documented on-disk layout *)
let entry_path (dir : string) (hex : string) : string =
  Filename.concat (Filename.concat dir (String.sub hex 0 2)) hex

let entry_paths (dir : string) : string list =
  match Wcet.Store.create ~dir () with
  | None -> []
  | Some st -> List.map (entry_path dir) (Wcet.Store.entries st)

(* ---- subjects ---- *)

let build_src (text : string) : Minic.Ast.program =
  let p = Minic.Parser.parse_program text in
  Minic.Typecheck.check_program_exn p;
  p

let small_built () : Fcstack.Chain.built =
  Fcstack.Chain.build Fcstack.Chain.Cvcomp
    (build_src
       {| global int g; void m() { var int x; x = 4; $g = x * 3; } main m; |})

(* ---- persistence across cache instances (the cross-run contract) ---- *)

let test_persists_across_instances () =
  with_dir (fun dir ->
      let b = small_built () in
      let uncached =
        Wcet.Driver.analyze_full b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout
      in
      (* cold: fresh cache over an empty directory *)
      let m1 = Wcet.Memo.create ~dir () in
      checkb "store attached" true (Wcet.Memo.store_dir m1 = Some dir);
      let cold =
        Wcet.Driver.analyze_full ~cache:m1 b.Fcstack.Chain.b_asm
          b.Fcstack.Chain.b_layout
      in
      let st1 = Wcet.Memo.stats m1 in
      checkb "cold run missed" true (st1.Wcet.Report.st_misses > 0);
      checki "cold run had no disk hits" 0 st1.Wcet.Report.st_disk_hits;
      checkb "cold run wrote entries" true (st1.Wcet.Report.st_writes > 0);
      checkb "entries on disk" true (entry_paths dir <> []);
      (* warm: a NEW cache instance (empty memory) over the same dir —
         this is what a second process run sees *)
      let m2 = Wcet.Memo.create ~dir () in
      let warm =
        Wcet.Driver.analyze_full ~cache:m2 b.Fcstack.Chain.b_asm
          b.Fcstack.Chain.b_layout
      in
      let st2 = Wcet.Memo.stats m2 in
      checkb "warm run served from disk" true
        (st2.Wcet.Report.st_disk_hits > 0);
      checki "warm run ran no decode" 0 st2.Wcet.Report.st_decode;
      checki "warm run wrote nothing" 0 st2.Wcet.Report.st_writes;
      checkb "warm = cold" true (warm = cold);
      checkb "persistent = uncached" true (cold = uncached))

(* unusable directory: silent degradation to a memory-only cache *)
let test_unusable_dir_degrades () =
  with_dir (fun dir ->
      write_file dir "not a directory";
      let file_as_dir = Filename.concat dir "sub" in
      let m = Wcet.Memo.create ~dir:file_as_dir () in
      checkb "no store attached" true (Wcet.Memo.store_dir m = None);
      let b = small_built () in
      let r =
        Wcet.Driver.analyze_full ~cache:m b.Fcstack.Chain.b_asm
          b.Fcstack.Chain.b_layout
      in
      checkb "memory-only analysis still correct" true
        (r
         = Wcet.Driver.analyze_full b.Fcstack.Chain.b_asm
             b.Fcstack.Chain.b_layout))

(* ---- warm == cold == uncached on random programs (qcheck) ---- *)

let cold_warm_uncached_prop =
  QCheck.Test.make ~count:12
    ~name:"store: warm = cold = uncached (random programs, all compilers)"
    QCheck.small_int
    (fun seed ->
       with_dir (fun dir ->
           let p = Testlib.Gen.gen_program (seed land 0xFFF) in
           List.for_all
             (fun comp ->
                let b = Fcstack.Chain.build ~exact:true comp p in
                let persistent () =
                  (* fresh instance each time: memory empty, disk warm *)
                  let cache = Wcet.Memo.create ~dir () in
                  try
                    Ok
                      (Wcet.Driver.analyze_full ~cache b.Fcstack.Chain.b_asm
                         b.Fcstack.Chain.b_layout)
                  with Wcet.Driver.Error m -> Error m
                in
                let plain =
                  try
                    Ok
                      (Wcet.Driver.analyze_full b.Fcstack.Chain.b_asm
                         b.Fcstack.Chain.b_layout)
                  with Wcet.Driver.Error m -> Error m
                in
                persistent () = plain && persistent () = plain)
             Fcstack.Chain.all_compilers))

(* ---- fault injection: corruption is a miss, never an error ---- *)

let corruptions : (string * (string -> unit)) list =
  [ ( "truncate",
      fun path ->
        let n = String.length (read_file path) in
        Unix.truncate path (max 1 (n / 2)) );
    ( "bit flip",
      fun path ->
        let s = Bytes.of_string (read_file path) in
        let i = Bytes.length s - 1 in
        Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x40));
        write_file path (Bytes.to_string s) );
    ("empty file", fun path -> write_file path "");
    ("garbage", fun path -> write_file path "this is not a cache entry") ]

let test_fault_injection () =
  List.iter
    (fun (name, corrupt) ->
       with_dir (fun dir ->
           let b = small_built () in
           let m1 = Wcet.Memo.create ~dir () in
           let cold =
             Wcet.Driver.analyze_full ~cache:m1 b.Fcstack.Chain.b_asm
               b.Fcstack.Chain.b_layout
           in
           let paths = entry_paths dir in
           checkb (name ^ ": entries written") true (paths <> []);
           List.iter corrupt paths;
           (* a fresh instance must silently re-analyze — no exception,
              no stale data, correct result *)
           let m2 = Wcet.Memo.create ~dir () in
           let again =
             Wcet.Driver.analyze_full ~cache:m2 b.Fcstack.Chain.b_asm
               b.Fcstack.Chain.b_layout
           in
           let st = Wcet.Memo.stats m2 in
           checki (name ^ ": corrupted entries never hit") 0
             st.Wcet.Report.st_disk_hits;
           checkb (name ^ ": re-analysis ran") true
             (st.Wcet.Report.st_misses > 0);
           checkb (name ^ ": result unchanged") true (again = cold)))
    corruptions

(* a stale toolchain-version stamp with *intact* framing (magic + body
   MD5) must also miss: the version check alone rejects it *)
let test_stale_version_is_miss () =
  with_dir (fun dir ->
      match Wcet.Store.create ~dir () with
      | None -> Alcotest.fail "store creation failed"
      | Some st ->
        let b = small_built () in
        let report, annots =
          Wcet.Driver.analyze_full b.Fcstack.Chain.b_asm
            b.Fcstack.Chain.b_layout
        in
        let digest = Digest.string "store-test-entry" in
        let payload = "key-payload-bytes" in
        checkb "save publishes" true
          (Wcet.Store.save st ~digest ~payload (report, annots));
        checkb "roundtrip" true
          (Wcet.Store.load st ~digest ~payload = Some (report, annots));
        (* digest collision stand-in: same file, different payload *)
        checkb "payload mismatch is a miss" true
          (Wcet.Store.load st ~digest ~payload:"other-payload" = None);
        (* re-frame the entry with a stale version stamp *)
        let body =
          Marshal.to_string ("vericomp-wcet-0 stale", payload, report, annots)
            []
        in
        write_file
          (entry_path dir (Digest.to_hex digest))
          ("VCWS1" ^ Digest.string body ^ body);
        checkb "stale version is a miss" true
          (Wcet.Store.load st ~digest ~payload = None);
        (* saving again over the bad file is a no-op (file exists), but
           a fresh Memo must still never serve the stale entry *)
        checkb "duplicate save is not a write" true
          (not (Wcet.Store.save st ~digest ~payload (report, annots)));
        (* the previous toolchain generation specifically: a store
           written before the OMT engine existed (vericomp-wcet-3)
           must be a silent miss under the current stamp, even with
           the matching OCaml version suffix *)
        let wcet3 = "vericomp-wcet-3 ocaml-" ^ Sys.ocaml_version in
        let body3 =
          Marshal.to_string (wcet3, payload, report, annots) []
        in
        write_file
          (entry_path dir (Digest.to_hex digest))
          ("VCWS1" ^ Digest.string body3 ^ body3);
        checkb "pre-OMT generation (wcet-3) is a miss" true
          (Wcet.Store.load st ~digest ~payload = None))

(* ---- fault injection: WRITE failures are silent misses too ---- *)

(* Occupy every 2-hex shard slot with a regular FILE: each entry write
   then fails with ENOTDIR (the closest portable stand-in for
   ENOSPC/EACCES — works even as root, where permission bits are
   ignored), while the store's top-level writability probe still
   passes. The contract: [save] returns false silently, analysis is
   byte-identical to an uncached run, nothing raises. *)
let clog_all_shards (dir : string) : unit =
  String.iter
    (fun a ->
       String.iter
         (fun b ->
            write_file (Filename.concat dir (Printf.sprintf "%c%c" a b)) "x")
         "0123456789abcdef")
    "0123456789abcdef"

let test_write_failure_is_silent_miss () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      clog_all_shards dir;
      let b = small_built () in
      let uncached =
        Wcet.Driver.analyze_full b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout
      in
      (* the store attaches (the top directory IS writable)... *)
      let m = Wcet.Memo.create ~dir () in
      checkb "store attached despite clogged shards" true
        (Wcet.Memo.store_dir m = Some dir);
      let r1 =
        Wcet.Driver.analyze_full ~cache:m b.Fcstack.Chain.b_asm
          b.Fcstack.Chain.b_layout
      in
      (* ...but every entry write failed, silently: nothing landed *)
      let st = Wcet.Memo.stats m in
      checki "no disk hit" 0 st.Wcet.Report.st_disk_hits;
      checkb "analysis re-ran" true (st.Wcet.Report.st_misses > 0);
      checkb "write failure changes no byte of the result" true
        (r1 = uncached);
      (* a fresh instance finds nothing on disk and re-analyzes — again
         byte-identical, again no exception *)
      let m2 = Wcet.Memo.create ~dir () in
      let r2 =
        Wcet.Driver.analyze_full ~cache:m2 b.Fcstack.Chain.b_asm
          b.Fcstack.Chain.b_layout
      in
      checki "still no disk hit across instances" 0
        (Wcet.Memo.stats m2).Wcet.Report.st_disk_hits;
      checkb "second run byte-identical too" true (r2 = uncached);
      (* the raw Store agrees: save reports failure as [false], load
         reports it as a miss — neither raises *)
      match Wcet.Store.create ~dir () with
      | None -> Alcotest.fail "store creation failed over clogged shards"
      | Some st ->
        let digest = Digest.string "clogged-entry" in
        checkb "save over a clogged shard returns false" true
          (not (Wcet.Store.save st ~digest ~payload:"p" uncached));
        checkb "load over a clogged shard is a miss" true
          (Wcet.Store.load st ~digest ~payload:"p" = None))

(* a torn/garbage recency index must never break GC: unparseable lines
   are skipped, eviction still applies the byte budget *)
let test_gc_tolerates_torn_index () =
  with_dir (fun dir ->
      match Wcet.Store.create ~dir () with
      | None -> Alcotest.fail "store creation failed"
      | Some st ->
        let b = small_built () in
        let entry =
          Wcet.Driver.analyze_full b.Fcstack.Chain.b_asm
            b.Fcstack.Chain.b_layout
        in
        List.iter
          (fun d -> ignore (Wcet.Store.save st ~digest:d ~payload:"p" entry))
          [ Digest.string "t1"; Digest.string "t2" ];
        let index = Filename.concat dir "index" in
        (* a crash mid-append: garbage, a torn half-digest, binary *)
        write_file index
          (read_file index ^ "not-a-digest\nabc\n\x00\x01\x02\n"
           ^ String.sub (Digest.to_hex (Digest.string "t1")) 0 9);
        Wcet.Store.gc ~max_bytes:0 st;
        checki "zero budget clears the store through a torn index" 0
          (List.length (Wcet.Store.entries st));
        (* and the store still works afterwards *)
        let d = Digest.string "t3" in
        checkb "post-GC save works" true
          (Wcet.Store.save st ~digest:d ~payload:"p" entry);
        checkb "post-GC load works" true
          (Wcet.Store.load st ~digest:d ~payload:"p" = Some entry))

(* ---- engine Both: warm == cold == uncached through the store ---- *)

let test_both_engine_cold_warm_uncached () =
  with_dir (fun dir ->
      let b =
        Fcstack.Chain.build Fcstack.Chain.Cdefault_o0
          (build_src
             {| volatile in double sb_in; global double g;
                void m() { var double x; x = volatile(sb_in);
                  if (x >. 10.0) { $g = x +. 1.0; } else { skip; }
                  if (x <. 5.0)  { $g = $g +. 2.0; } else { skip; } }
                main m; |})
      in
      let engine = Wcet.Report.Both in
      let analyze ?cache () =
        Wcet.Driver.analyze_full ?cache ~engine b.Fcstack.Chain.b_asm
          b.Fcstack.Chain.b_layout
      in
      let uncached = analyze () in
      let m1 = Wcet.Memo.create ~dir () in
      let cold = analyze ~cache:m1 () in
      checkb "cold wrote the Both entry" true
        ((Wcet.Memo.stats m1).Wcet.Report.st_writes > 0);
      let m2 = Wcet.Memo.create ~dir () in
      let warm = analyze ~cache:m2 () in
      let st2 = Wcet.Memo.stats m2 in
      checkb "warm served from disk" true (st2.Wcet.Report.st_disk_hits > 0);
      checki "warm ran no decode" 0 st2.Wcet.Report.st_decode;
      checkb "warm = cold = uncached" true (warm = cold && cold = uncached);
      (* the report in the roundtripped entry still carries both
         bounds, and the oracle still holds on the served copy *)
      let r, _ = warm in
      (match r.Wcet.Report.rp_wcet_ipet, r.Wcet.Report.rp_wcet_omt with
       | Some i, Some o ->
         checkb "served entry keeps omt <= ipet" true (o <= i)
       | _ -> Alcotest.fail "Both report lost a bound through the store");
      (* a warm store from the Both engine never serves Ipet or Omt:
         their keys differ, so both are misses over the same directory *)
      let m3 = Wcet.Memo.create ~dir () in
      ignore
        (Wcet.Driver.analyze_full ~cache:m3 ~engine:Wcet.Report.Ipet
           b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout);
      ignore
        (Wcet.Driver.analyze_full ~cache:m3 ~engine:Wcet.Report.Omt
           b.Fcstack.Chain.b_asm b.Fcstack.Chain.b_layout);
      let st3 = Wcet.Memo.stats m3 in
      checki "no cross-engine disk hit" 0 st3.Wcet.Report.st_disk_hits;
      checkb "single-engine analyses re-ran" true
        (st3.Wcet.Report.st_misses > 0))

(* ---- LRU GC ---- *)

let test_gc_lru () =
  with_dir (fun dir ->
      match Wcet.Store.create ~dir () with
      | None -> Alcotest.fail "store creation failed"
      | Some st ->
        let b = small_built () in
        let entry =
          Wcet.Driver.analyze_full b.Fcstack.Chain.b_asm
            b.Fcstack.Chain.b_layout
        in
        let d1 = Digest.string "entry-1"
        and d2 = Digest.string "entry-2"
        and d3 = Digest.string "entry-3" in
        List.iter
          (fun d -> ignore (Wcet.Store.save st ~digest:d ~payload:"p" entry))
          [ d1; d2; d3 ];
        (* use e1 again: recency order is now e2 < e3 < e1 *)
        checkb "reload e1" true
          (Wcet.Store.load st ~digest:d1 ~payload:"p" <> None);
        let per_entry = Wcet.Store.size_bytes st / 3 in
        Wcet.Store.gc ~max_bytes:(2 * per_entry) st;
        let left = List.sort compare (Wcet.Store.entries st) in
        let expect =
          List.sort compare [ Digest.to_hex d1; Digest.to_hex d3 ]
        in
        Alcotest.check (Alcotest.list Alcotest.string)
          "least-recently-used entry evicted first" expect left;
        (* Memo.gc with a zero budget clears the store entirely *)
        let m = Wcet.Memo.create ~dir () in
        Wcet.Memo.gc ~max_bytes:0 m;
        checki "zero budget clears the store" 0
          (List.length (Wcet.Store.entries st));
        (* and analysis over the emptied store still works *)
        let r =
          Wcet.Driver.analyze_full ~cache:m b.Fcstack.Chain.b_asm
            b.Fcstack.Chain.b_layout
        in
        checkb "post-GC analysis correct" true (r = entry))

(* ---- two Domains, independent handles, one directory ---- *)

let test_two_domains_one_dir () =
  (* unlike Test_par's shared-Memo test, each Domain opens its OWN
     Memo over the same directory — distinct mutexes, so all
     serialization is the filesystem's (the cross-process situation,
     compressed into one process). Every result must equal the
     uncached sequential reference. *)
  with_dir (fun dir ->
      let programs = List.map Testlib.Gen.gen_program [ 401; 402; 401 ] in
      let builds =
        List.map (Fcstack.Chain.build ~exact:true Fcstack.Chain.Cvcomp)
          programs
      in
      let analyze ?cache (b : Fcstack.Chain.built) =
        match
          Wcet.Driver.analyze_full ?cache b.Fcstack.Chain.b_asm
            b.Fcstack.Chain.b_layout
        with
        | r -> Ok r
        | exception Wcet.Driver.Error m -> Error m
      in
      let expected = List.map (fun b -> analyze b) builds in
      let worker () =
        let cache = Wcet.Memo.create ~dir () in
        List.init 4 (fun _ -> List.map (analyze ~cache) builds)
      in
      let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
      let r1 = Domain.join d1 and r2 = Domain.join d2 in
      List.iteri
        (fun i r ->
           checkb (Printf.sprintf "domain 1 round %d = reference" i) true
             (r = expected))
        r1;
      List.iteri
        (fun i r ->
           checkb (Printf.sprintf "domain 2 round %d = reference" i) true
             (r = expected))
        r2)

let suite =
  [ ("store: analyses persist across cache instances", `Quick,
     test_persists_across_instances);
    ("store: unusable directory degrades to memory-only", `Quick,
     test_unusable_dir_degrades);
    QCheck_alcotest.to_alcotest cold_warm_uncached_prop;
    ("store: fault injection (corruption is a miss)", `Quick,
     test_fault_injection);
    ("store: stale version stamp is a miss", `Quick,
     test_stale_version_is_miss);
    ("store: write failure is a silent miss (clogged shards)", `Quick,
     test_write_failure_is_silent_miss);
    ("store: GC tolerates a torn recency index", `Quick,
     test_gc_tolerates_torn_index);
    ("store: engine Both warm = cold = uncached, no cross-engine serve",
     `Quick, test_both_engine_cold_warm_uncached);
    ("store: GC evicts least-recently-used first", `Quick, test_gc_lru);
    ("store: two Domains, independent handles, one dir", `Slow,
     test_two_domains_one_dir) ]
