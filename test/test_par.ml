(* Tests of the parallel per-node pipeline (Fcstack.Par): the work
   queue itself, determinism of parallel runs against the sequential
   reference, the WCET-soundness oracle over a parallel run, and a
   domain-safety regression that compiles concurrently from two
   Domains (catching hidden global state the audit might have missed). *)

let checkb = Alcotest.check Alcotest.bool

(* ---- the work queue itself ---- *)

let test_run_order () =
  (* results are merged by task index, not completion order; make the
     early tasks slow so completion order inverts submission order *)
  let tasks =
    Array.init 16 (fun i () ->
        let spin = ref 0 in
        for _ = 1 to (16 - i) * 10_000 do incr spin done;
        ignore !spin;
        i * i)
  in
  let expect = Array.init 16 (fun i -> i * i) in
  Alcotest.check (Alcotest.array Alcotest.int) "jobs=4 keeps task order"
    expect (Fcstack.Par.run ~jobs:4 tasks);
  Alcotest.check (Alcotest.array Alcotest.int) "jobs=1 reference"
    expect (Fcstack.Par.run ~jobs:1 tasks)

let test_run_more_jobs_than_tasks () =
  let tasks = Array.init 3 (fun i () -> i + 1) in
  Alcotest.check (Alcotest.array Alcotest.int) "jobs=8 over 3 tasks"
    [| 1; 2; 3 |] (Fcstack.Par.run ~jobs:8 tasks)

exception Boom of int

let test_run_exception_deterministic () =
  (* several tasks raise: the smallest-indexed exception must win *)
  let tasks =
    Array.init 12 (fun i () -> if i mod 3 = 1 then raise (Boom i) else i)
  in
  List.iter
    (fun jobs ->
       match Fcstack.Par.run ~jobs tasks with
       | _ -> Alcotest.fail "expected an exception"
       | exception Boom i ->
         Alcotest.check Alcotest.int
           (Printf.sprintf "smallest raising index (jobs=%d)" jobs) 1 i)
    [ 1; 4 ]

let test_map_list_empty_and_single () =
  Alcotest.check (Alcotest.list Alcotest.int) "empty" []
    (Fcstack.Par.map_list ~jobs:4 (fun x -> x) []);
  Alcotest.check (Alcotest.list Alcotest.int) "single" [ 7 ]
    (Fcstack.Par.map_list ~jobs:4 (fun x -> x + 1) [ 6 ])

(* ---- bounded-buffer streaming ---- *)

(* shard shapes with empty shards mixed in, derived from [seed] *)
let stream_shards ~(seed : int) : int array array =
  let nshards = 1 + (seed land 7) in
  let next = ref 0 in
  Array.init nshards (fun k ->
      let len = (seed + (3 * k)) mod 5 in (* 0..4 tasks, some empty *)
      Array.init len (fun _ -> let v = !next in incr next; v))

let stream_equals_seq_prop =
  QCheck.Test.make ~count:40
    ~name:"par: run_stream jobs:4 lookahead:1 = sequential"
    QCheck.small_int
    (fun seed ->
       let shards = stream_shards ~seed in
       let producer k =
         if k < Array.length shards then
           Some (Array.map (fun v () -> v * v) shards.(k))
         else None
       in
       let consumer acc i v = (i, v) :: acc in
       let run jobs =
         List.rev
           (Fcstack.Par.run_stream ~jobs ~lookahead:1 ~producer ~consumer
              ~init:[] ())
       in
       let expected =
         Array.to_list (Array.concat (Array.to_list shards))
         |> List.mapi (fun i v -> (i, v * v))
       in
       run 1 = expected && run 4 = expected)

let test_stream_empty_and_exception () =
  (* empty stream folds to init *)
  Alcotest.check (Alcotest.list Alcotest.int) "empty stream" []
    (Fcstack.Par.run_stream ~jobs:4 ~producer:(fun _ -> None)
       ~consumer:(fun acc _ v -> v :: acc) ~init:[] ());
  (* a raising task: smallest global index wins, the prefix before it
     is consumed, nothing at or after it reaches the consumer *)
  let producer k =
    if k < 4 then
      Some (Array.init 3 (fun j ->
          let g = (3 * k) + j in
          fun () -> if g >= 5 then raise (Boom g) else g))
    else None
  in
  List.iter
    (fun jobs ->
       let seen = ref [] in
       match
         Fcstack.Par.run_stream ~jobs ~producer
           ~consumer:(fun () g v -> seen := (g, v) :: !seen) ~init:() ()
       with
       | () -> Alcotest.fail "expected Boom"
       | exception Boom g ->
         Alcotest.check Alcotest.int
           (Printf.sprintf "smallest raising index (jobs=%d)" jobs) 5 g;
         Alcotest.check
           (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
           (Printf.sprintf "prefix before failure (jobs=%d)" jobs)
           [ (0, 0); (1, 1); (2, 2); (3, 3); (4, 4) ]
           (List.rev !seen))
    [ 1; 4 ]

let test_stream_bounded_window () =
  (* the producer observes how many shards are alive (produced minus
     fully consumed): it must never exceed jobs + lookahead + 1 (the
     +1 being the shard under production) even for a long stream *)
  let jobs = 2 and lookahead = 1 in
  let nshards = 40 and shard_len = 3 in
  let consumed = Atomic.make 0 in
  let produced = Atomic.make 0 in
  let max_alive = ref 0 in
  let producer k =
    if k >= nshards then None
    else begin
      let alive = Atomic.fetch_and_add produced 1 - Atomic.get consumed in
      if alive > !max_alive then max_alive := alive;
      Some (Array.init shard_len (fun j () -> (shard_len * k) + j))
    end
  in
  let consumer acc g v =
    Alcotest.check Alcotest.int "stream order" g v;
    if (g + 1) mod shard_len = 0 then Atomic.incr consumed;
    acc + 1
  in
  let n =
    Fcstack.Par.run_stream ~jobs ~lookahead ~producer ~consumer ~init:0 ()
  in
  Alcotest.check Alcotest.int "all tasks consumed" (nshards * shard_len) n;
  checkb
    (Printf.sprintf "resident shards bounded (max %d)" !max_alive)
    true
    (!max_alive <= jobs + lookahead + 1)

(* ---- determinism of the parallel per-node chain ---- *)

let named_workload ~(nodes : int) ~(seed : int) :
  (string * Minic.Ast.program) list =
  List.map
    (fun (n, src) -> (n.Scade.Symbol.n_name, src))
    (Scade.Workload.flight_program ~nodes ~seed)

let par_equals_seq_prop =
  QCheck.Test.make ~count:6
    ~name:"par: run_chain jobs:4 = sequential (asm, wcet, validation)"
    QCheck.small_int
    (fun seed ->
       let nodes = 3 + (seed land 3) in
       let workload = named_workload ~nodes ~seed:(1000 + seed) in
       List.for_all
         (fun compiler ->
            let config jobs =
              Fcstack.Toolchain.of_session_request
                (Fcstack.Toolchain.session ~jobs ())
                (Fcstack.Toolchain.request_opts ~worlds:2 ~compiler ())
            in
            let seq =
              Fcstack.Par.run_chain ~config:(config 1) ~exact:true ~cycles:2
                workload
            in
            let par =
              Fcstack.Par.run_chain ~config:(config 4) ~exact:true ~cycles:2
                workload
            in
            seq = par)
         [ Fcstack.Chain.Cvcomp; Fcstack.Chain.Cdefault_o0 ])

(* the streaming chain is the batch chain, shard by shard *)
let chain_stream_equals_batch_prop =
  QCheck.Test.make ~count:4
    ~name:"par: run_chain_stream jobs:4 = run_chain"
    QCheck.small_int
    (fun seed ->
       let nodes = 4 + (seed land 3) in
       let workload = named_workload ~nodes ~seed:(4000 + seed) in
       let arr = Array.of_list workload in
       let shard_size = 1 + (seed mod 3) in
       let producer k =
         let lo = k * shard_size in
         if lo >= Array.length arr then None
         else
           Some (Array.sub arr lo (min shard_size (Array.length arr - lo)))
       in
       let config jobs =
         Fcstack.Toolchain.of_session_request
           (Fcstack.Toolchain.session ~jobs ())
           (Fcstack.Toolchain.request_opts ~worlds:2 ())
       in
       let batch =
         Fcstack.Par.run_chain ~config:(config 1) ~exact:true ~cycles:2
           workload
       in
       let stream =
         List.rev
           (Fcstack.Par.run_chain_stream ~config:(config 4) ~exact:true
              ~cycles:2 ~producer
              ~consumer:(fun acc _ r -> r :: acc) ~init:[] ())
       in
       stream = batch)

(* workload measurement (the bench path) is deterministic under -j *)
let workload_par_equals_seq_prop =
  QCheck.Test.make ~count:4
    ~name:"par: Experiments.run_workload jobs:4 = jobs:1"
    QCheck.small_int
    (fun seed ->
       let nodes = 4 + (seed land 3) in
       let config jobs =
         Fcstack.Toolchain.of_session_request
           (Fcstack.Toolchain.session ~jobs ())
           Fcstack.Toolchain.default_request
       in
       Fcstack.Experiments.run_workload ~nodes ~seed:(2000 + seed)
         ~config:(config 4) ()
       = Fcstack.Experiments.run_workload ~nodes ~seed:(2000 + seed)
           ~config:(config 1) ())

(* ---- soundness oracle over a parallel run ---- *)

let test_parallel_wcet_soundness () =
  (* WCET >= simulated cycles for every node of a parallel run: the
     ROADMAP invariant must survive the fan-out *)
  let program = Scade.Workload.flight_program ~nodes:8 ~seed:3131 in
  let named = List.map (fun (n, src) -> (n.Scade.Symbol.n_name, src)) program in
  let results =
    Fcstack.Par.run_chain
      ~config:
        (Fcstack.Toolchain.of_session_request
           (Fcstack.Toolchain.session ~jobs:4 ())
           (Fcstack.Toolchain.request_opts ~compiler:Fcstack.Chain.Cvcomp ()))
      ~exact:true named
  in
  List.iter2
    (fun (name, src) outcome ->
       let r =
         match outcome with
         | Ok r -> r
         | Error d ->
           Alcotest.failf "%s failed: %s" name (Fcstack.Diag.to_string d)
       in
       checkb (name ^ " validated") true (Result.is_ok r.Fcstack.Par.pn_validation);
       let b = Fcstack.Chain.build ~exact:true Fcstack.Chain.Cvcomp src in
       List.iter
         (fun seed ->
            let sim =
              Fcstack.Chain.simulate b (Minic.Interp.seeded_world ~seed ())
            in
            let cycles = sim.Target.Sim.rr_stats.Target.Sim.cycles in
            checkb
              (Printf.sprintf "%s: WCET %d >= simulated %d (seed %d)" name
                 r.Fcstack.Par.pn_wcet cycles seed)
              true
              (r.Fcstack.Par.pn_wcet >= cycles))
         [ 1; 2; 3 ])
    named results

(* ---- domain-safety regression ---- *)

let test_concurrent_compilations_isolated () =
  (* two Domains compile *different* programs concurrently, repeatedly;
     both must equal their sequential counterparts. This catches hidden
     global mutable state (fresh-name counters, memo tables) that the
     audit missed: cross-domain interference would perturb generated
     names, register numbers or analysis results. *)
  let p1 = Testlib.Gen.gen_program 101 and p2 = Testlib.Gen.gen_program 202 in
  let compile (p : Minic.Ast.program) :
    Target.Asm.program * Target.Asm.program * int =
    let vasm = Vcomp.Driver.compile ~options:Vcomp.Driver.no_validation p in
    let casm =
      Cotsc.Driver.compile ~level:Cotsc.Driver.Ofull ~contract_fma:false p
    in
    let lay = Target.Layout.build p vasm in
    (vasm, casm, (Wcet.Driver.analyze vasm lay).Wcet.Report.rp_wcet)
  in
  let expected1 = compile p1 and expected2 = compile p2 in
  let rounds = 6 in
  let d1 = Domain.spawn (fun () -> List.init rounds (fun _ -> compile p1)) in
  let d2 = Domain.spawn (fun () -> List.init rounds (fun _ -> compile p2)) in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  List.iteri
    (fun i r ->
       checkb (Printf.sprintf "domain 1 round %d = sequential" i) true
         (r = expected1))
    r1;
  List.iteri
    (fun i r ->
       checkb (Printf.sprintf "domain 2 round %d = sequential" i) true
         (r = expected2))
    r2

let test_shared_cache_across_domains () =
  (* two Domains hammer ONE Wcet.Memo from both sides, analyzing
     overlapping programs repeatedly: every result — hit or miss, under
     whatever interleaving — must equal the uncached sequential
     reference. This is the race regression for the sharded cache:
     a torn entry, a lost update or a cross-function mixup would
     surface as a differing report. *)
  let programs =
    List.map Testlib.Gen.gen_program [ 301; 302; 303; 301 (* overlap *) ]
  in
  let builds =
    List.map (Fcstack.Chain.build ~exact:true Fcstack.Chain.Cvcomp) programs
  in
  let analyze ?cache (b : Fcstack.Chain.built) :
    (Wcet.Report.t, string) Result.t =
    match
      Fcstack.Chain.wcet
        ~config:
          (Fcstack.Toolchain.of_session_request
             (Fcstack.Toolchain.session ?cache ())
             Fcstack.Toolchain.default_request)
        b
    with
    | r -> Ok r
    | exception Wcet.Driver.Error m -> Error m
  in
  let expected = List.map (fun b -> analyze b) builds in
  let cache = Wcet.Memo.create () in
  let rounds = 8 in
  let worker () = List.init rounds (fun _ -> List.map (analyze ~cache) builds) in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  List.iteri
    (fun i r ->
       checkb (Printf.sprintf "domain 1 round %d = uncached sequential" i) true
         (r = expected))
    r1;
  List.iteri
    (fun i r ->
       checkb (Printf.sprintf "domain 2 round %d = uncached sequential" i) true
         (r = expected))
    r2;
  (* both domains analyzed the same content: the cache must have served
     hits (the point of sharing) without double-counting entries *)
  let st = Wcet.Memo.stats cache in
  checkb "shared cache produced hits" true (st.Wcet.Report.st_hits > 0);
  checkb "entries bounded by distinct analyses" true
    (st.Wcet.Report.st_entries <= st.Wcet.Report.st_misses)

let suite =
  [ ("par: results merged by task index", `Quick, test_run_order);
    ("par: more jobs than tasks", `Quick, test_run_more_jobs_than_tasks);
    ("par: deterministic exception choice", `Quick,
     test_run_exception_deterministic);
    ("par: map_list edge cases", `Quick, test_map_list_empty_and_single);
    QCheck_alcotest.to_alcotest stream_equals_seq_prop;
    ("par: run_stream empty stream and mid-shard failure", `Quick,
     test_stream_empty_and_exception);
    ("par: run_stream window stays bounded", `Quick,
     test_stream_bounded_window);
    QCheck_alcotest.to_alcotest par_equals_seq_prop;
    QCheck_alcotest.to_alcotest chain_stream_equals_batch_prop;
    QCheck_alcotest.to_alcotest workload_par_equals_seq_prop;
    ("par: WCET >= simulated cycles on a parallel run", `Slow,
     test_parallel_wcet_soundness);
    ("par: concurrent compilations from two Domains", `Slow,
     test_concurrent_compilations_isolated);
    ("par: one shared analysis cache from two Domains", `Slow,
     test_shared_cache_across_domains) ]
