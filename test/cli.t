End-to-end smoke test of the command-line tools: generate a mini-C
flight-control node, compile it under the verified-style configuration
with whole-chain validation, emit assembly, and run the WCET analyzer
with an annotation file (paper section 3.4).

Generate two nodes of the synthetic workload:

  $ ../bin/fcgen.exe -n 2 -s 7 -d gen > /dev/null
  $ ls gen
  n000.mc
  n001.mc

Compile with the verified-style compiler and validate the whole chain:

  $ ../bin/fcc.exe -c vcomp --validate -o n000.s gen/n000.mc
  validation: machine code matches source semantics
  $ head -1 n000.s
  	.text
  $ grep -q blr n000.s && echo has-code
  has-code

The COTS configurations also produce assembly:

  $ ../bin/fcc.exe -c o2 gen/n000.mc | grep -q blr && echo has-code
  has-code

Analyze WCET and write the annotation file:

  $ ../bin/aitw.exe -c vcomp --annot-out n000.ann gen/n000.mc > report.txt
  $ test -s report.txt && echo report-written
  report-written
  $ test -s n000.ann && echo annotation-file-written
  annotation-file-written

Parallel compilation is deterministic: a -j 2 run of the bench produces
byte-identical tables to the sequential run (timing goes to stderr):

  $ ../bench/main.exe -e table1 -n 8 -j 1 2>/dev/null > seq_table.out
  $ ../bench/main.exe -e table1 -n 8 -j 2 2>/dev/null > par_table.out
  $ cmp seq_table.out par_table.out && echo tables-identical
  tables-identical

fcc compiles a multi-node input across domains with input-ordered,
deterministic output:

  $ ../bin/fcc.exe -c vcomp -j 1 gen/n000.mc gen/n001.mc > seq_multi.s
  $ ../bin/fcc.exe -c vcomp -j 2 gen/n000.mc gen/n001.mc > par_multi.s
  $ cmp seq_multi.s par_multi.s && echo asm-identical
  asm-identical

and so does the WCET analyzer:

  $ ../bin/aitw.exe -j 2 gen/n000.mc gen/n001.mc > par_report.txt
  $ ../bin/aitw.exe -j 1 gen/n000.mc gen/n001.mc > seq_report.txt
  $ cmp seq_report.txt par_report.txt && echo reports-identical
  reports-identical

The shared analysis cache never changes results: --no-cache produces
byte-identical reports (single file, and multi-file across two domains
sharing one cache against an uncached sequential run):

  $ ../bin/aitw.exe -c vcomp --no-cache gen/n000.mc > nocache_report.txt
  $ ../bin/aitw.exe -c vcomp gen/n000.mc > cache_report.txt
  $ cmp nocache_report.txt cache_report.txt && echo reports-identical
  reports-identical
  $ ../bin/aitw.exe --compare -j 2 gen/n000.mc gen/n001.mc > par_cached.txt
  $ ../bin/aitw.exe --compare -j 1 --no-cache gen/n000.mc gen/n001.mc > seq_uncached.txt
  $ cmp seq_uncached.txt par_cached.txt && echo reports-identical
  reports-identical

and neither do the bench tables (cache accounting goes to stderr):

  $ ../bench/main.exe -e table1 -n 8 --no-cache 2>/dev/null > nocache_table.out
  $ cmp seq_table.out nocache_table.out && echo tables-identical
  tables-identical
