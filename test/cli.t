End-to-end smoke test of the command-line tools: generate a mini-C
flight-control node, compile it under the verified-style configuration
with whole-chain validation, emit assembly, and run the WCET analyzer
with an annotation file (paper section 3.4).

Generate two nodes of the synthetic workload:

  $ ../bin/fcgen.exe -n 2 -s 7 -d gen > /dev/null
  $ ls gen
  n000.mc
  n001.mc

Compile with the verified-style compiler and validate the whole chain:

  $ ../bin/fcc.exe -c vcomp --validate -o n000.s gen/n000.mc
  validation: machine code matches source semantics
  pass constprop    0 rewritten,    0 removed,    0 hoisted
  pass cse          0 rewritten,    0 removed,    0 hoisted
  pass gvn          6 rewritten,    0 removed,    0 hoisted
  pass licm         0 rewritten,    0 removed,    0 hoisted
  pass deadcode     0 rewritten,    1 removed,    0 hoisted
  $ head -1 n000.s
  	.text
  $ grep -q blr n000.s && echo has-code
  has-code

The COTS configurations also produce assembly:

  $ ../bin/fcc.exe -c o2 gen/n000.mc | grep -q blr && echo has-code
  has-code

Analyze WCET and write the annotation file:

  $ ../bin/aitw.exe -c vcomp --annot-out n000.ann gen/n000.mc > report.txt
  $ test -s report.txt && echo report-written
  report-written
  $ test -s n000.ann && echo annotation-file-written
  annotation-file-written

Parallel compilation is deterministic: a -j 2 run of the bench produces
byte-identical tables to the sequential run (timing goes to stderr):

  $ ../bench/main.exe -e table1 -n 8 -j 1 2>/dev/null > seq_table.out
  $ ../bench/main.exe -e table1 -n 8 -j 2 2>/dev/null > par_table.out
  $ cmp seq_table.out par_table.out && echo tables-identical
  tables-identical

fcc compiles a multi-node input across domains with input-ordered,
deterministic output:

  $ ../bin/fcc.exe -c vcomp -j 1 gen/n000.mc gen/n001.mc > seq_multi.s
  pass constprop    0 rewritten,    0 removed,    0 hoisted
  pass cse          9 rewritten,    0 removed,    0 hoisted
  pass gvn         11 rewritten,    0 removed,    0 hoisted
  pass licm         0 rewritten,    0 removed,    0 hoisted
  pass deadcode     0 rewritten,    1 removed,    0 hoisted
  $ ../bin/fcc.exe -c vcomp -j 2 gen/n000.mc gen/n001.mc > par_multi.s
  pass constprop    0 rewritten,    0 removed,    0 hoisted
  pass cse          9 rewritten,    0 removed,    0 hoisted
  pass gvn         11 rewritten,    0 removed,    0 hoisted
  pass licm         0 rewritten,    0 removed,    0 hoisted
  pass deadcode     0 rewritten,    1 removed,    0 hoisted
  $ cmp seq_multi.s par_multi.s && echo asm-identical
  asm-identical

and so does the WCET analyzer:

  $ ../bin/aitw.exe -j 2 gen/n000.mc gen/n001.mc > par_report.txt
  $ ../bin/aitw.exe -j 1 gen/n000.mc gen/n001.mc > seq_report.txt
  $ cmp seq_report.txt par_report.txt && echo reports-identical
  reports-identical

The shared analysis cache never changes results: --no-cache produces
byte-identical reports (single file, and multi-file across two domains
sharing one cache against an uncached sequential run):

  $ ../bin/aitw.exe -c vcomp --no-cache gen/n000.mc > nocache_report.txt
  $ ../bin/aitw.exe -c vcomp gen/n000.mc > cache_report.txt
  $ cmp nocache_report.txt cache_report.txt && echo reports-identical
  reports-identical
  $ ../bin/aitw.exe --compare -j 2 gen/n000.mc gen/n001.mc > par_cached.txt
  $ ../bin/aitw.exe --compare -j 1 --no-cache gen/n000.mc gen/n001.mc > seq_uncached.txt
  $ cmp seq_uncached.txt par_cached.txt && echo reports-identical
  reports-identical

and neither do the bench tables (cache accounting goes to stderr):

  $ ../bench/main.exe -e table1 -n 8 --no-cache 2>/dev/null > nocache_table.out
  $ cmp seq_table.out nocache_table.out && echo tables-identical
  tables-identical

Persistent cache: a --cache-dir survives across runs. The cold run
only writes; the warm run is served from disk (nonzero disk hits on
stderr) and both produce reports byte-identical to --no-cache:

  $ ../bin/aitw.exe -c vcomp --cache-dir wcache gen/n000.mc > cold_report.txt 2> cold_stats.txt
  $ ../bin/aitw.exe -c vcomp --cache-dir wcache gen/n000.mc > warm_report.txt 2> warm_stats.txt
  $ cmp nocache_report.txt cold_report.txt && echo cold-identical
  cold-identical
  $ cmp nocache_report.txt warm_report.txt && echo warm-identical
  warm-identical
  $ grep -q " 0 disk hits" cold_stats.txt && echo cold-run-no-disk-hits
  cold-run-no-disk-hits
  $ grep -Eq "[1-9][0-9]* disk hits" warm_stats.txt && echo warm-run-has-disk-hits
  warm-run-has-disk-hits

The FCSTACK_CACHE_DIR environment variable is the --cache-dir default:

  $ FCSTACK_CACHE_DIR=wcache ../bin/aitw.exe -c vcomp gen/n000.mc > env_report.txt 2> env_stats.txt
  $ cmp nocache_report.txt env_report.txt && echo env-identical
  env-identical
  $ grep -q "disk hits" env_stats.txt && echo env-cache-used
  env-cache-used

Two concurrent processes sharing one cache directory interleave
safely (crash-safe writes: an entry is either absent or complete):

  $ ../bin/aitw.exe -c vcomp --cache-dir shared gen/n000.mc > conc_a.txt 2>/dev/null &
  $ ../bin/aitw.exe -c vcomp --cache-dir shared gen/n000.mc > conc_b.txt 2>/dev/null
  $ wait
  $ cmp conc_a.txt conc_b.txt && cmp conc_a.txt nocache_report.txt && echo concurrent-identical
  concurrent-identical

bench accepts the same trio; warm tables are byte-identical too:

  $ ../bench/main.exe -e table1 -n 8 --cache-dir bcache 2>/dev/null > coldb_table.out
  $ ../bench/main.exe -e table1 -n 8 --cache-dir bcache 2> warmb_stats.txt > warmb_table.out
  $ cmp seq_table.out coldb_table.out && cmp seq_table.out warmb_table.out && echo tables-identical
  tables-identical
  $ grep -Eq "[1-9][0-9]* disk hits" warmb_stats.txt && echo bench-warm-hits
  bench-warm-hits

fcc accepts the trio for surface parity, and --cache-gc-mb 0 empties a
cache directory (LRU maintenance can live in the compile step of a
pipeline):

  $ ../bin/fcc.exe -c vcomp --cache-dir wcache --cache-gc-mb 0 gen/n000.mc > /dev/null
  pass constprop    0 rewritten,    0 removed,    0 hoisted
  pass cse          0 rewritten,    0 removed,    0 hoisted
  pass gvn          6 rewritten,    0 removed,    0 hoisted
  pass licm         0 rewritten,    0 removed,    0 hoisted
  pass deadcode     0 rewritten,    1 removed,    0 hoisted
  $ find wcache -type f -name '[0-9a-f]*' | wc -l | tr -d ' '
  0

After the GC the next analyzer run simply recomputes and repopulates:

  $ ../bin/aitw.exe -c vcomp --cache-dir wcache gen/n000.mc > regen_report.txt 2>/dev/null
  $ cmp nocache_report.txt regen_report.txt && echo regen-identical
  regen-identical

Failure containment: a malformed node costs exactly that node. A
single failing file is a total failure (exit 2) with a one-line
diagnostic and a summary on stderr, stdout untouched:

  $ echo 'int main( {' > bad.mc
  $ ../bin/fcc.exe -c vcomp bad.mc > bad.s 2> bad_diag.txt
  [2]
  $ test -s bad.s || echo stdout-empty
  stdout-empty
  $ grep -c "^bad.mc: parse error:" bad_diag.txt
  1
  $ grep -c "1/1 nodes failed (0 ok)" bad_diag.txt
  1

In a multi-file -j 2 run the bad node is contained: the run completes
with exit 1 and the survivors' assembly is byte-identical to a run
without the faulty file:

  $ ../bin/fcc.exe -c vcomp -j 2 gen/n000.mc bad.mc gen/n001.mc > partial.s 2> partial_diag.txt
  [1]
  $ cmp seq_multi.s partial.s && echo survivors-identical
  survivors-identical
  $ grep -c "1/3 nodes failed (2 ok)" partial_diag.txt
  1

--fail-fast restores abort-on-first-error: files after the failure are
not emitted and the whole run is a failure (exit 2):

  $ ../bin/fcc.exe -c vcomp --fail-fast gen/n000.mc bad.mc gen/n001.mc > ff.s 2> ff_diag.txt
  [2]
  $ cmp n000.s ff.s && echo only-first-file-emitted
  only-first-file-emitted
  $ grep -c "^bad.mc: parse error:" ff_diag.txt
  1

The analyzer contains failures the same way:

  $ ../bin/aitw.exe -c vcomp bad.mc > /dev/null 2> aitw_diag.txt
  [2]
  $ grep -c "^bad.mc: parse error:" aitw_diag.txt
  1
  $ ../bin/aitw.exe -c vcomp -j 2 gen/n000.mc bad.mc > partial_report.txt 2>/dev/null
  [1]
  $ ../bin/aitw.exe -c vcomp gen/n000.mc 2>/dev/null > solo_report.txt
  $ cmp solo_report.txt partial_report.txt && echo survivor-report-identical
  survivor-report-identical

The middle-end pipeline is selectable: -O picks a level (0 = no
passes, 1 = the paper's CompCert 1.7 pipeline, 2 = + GVN-CSE and LICM,
the default), --passes an exact list. Per-pass accounting goes to
stderr; assembly on stdout differs across levels:

  $ ../bin/fcc.exe -c vcomp -O 0 gen/n000.mc 2>/dev/null > o0.s
  $ ../bin/fcc.exe -c vcomp -O 2 gen/n000.mc 2>/dev/null > o2.s
  $ cmp -s o0.s o2.s || echo pipelines-differ
  pipelines-differ
  $ ../bin/fcc.exe -c vcomp --passes constprop,cse,gvn,licm,deadcode gen/n000.mc 2>/dev/null > passes.s
  $ cmp o2.s passes.s && echo passes-list-equals-O2
  passes-list-equals-O2

An unknown pass name is a command-line error before any work runs:

  $ ../bin/fcc.exe -c vcomp --passes constprop,vectorize gen/n000.mc 2>/dev/null
  [124]

Each -O variant is deterministic across -j, and the analyzer keeps the
cached == uncached contract per pipeline (the pipeline spec is part of
the analysis-cache key, so selections never share entries):

  $ ../bin/fcc.exe -c vcomp -O 1 -j 1 gen/n000.mc gen/n001.mc 2>/dev/null > o1_seq.s
  $ ../bin/fcc.exe -c vcomp -O 1 -j 2 gen/n000.mc gen/n001.mc 2>/dev/null > o1_par.s
  $ cmp o1_seq.s o1_par.s && echo o1-deterministic
  o1-deterministic
  $ ../bin/aitw.exe -c vcomp -O 1 -j 2 gen/n000.mc gen/n001.mc 2>/dev/null > o1_par_report.txt
  $ ../bin/aitw.exe -c vcomp -O 1 -j 1 --no-cache gen/n000.mc gen/n001.mc 2>/dev/null > o1_seq_report.txt
  $ cmp o1_seq_report.txt o1_par_report.txt && echo o1-reports-identical
  o1-reports-identical
  $ ../bin/aitw.exe -c vcomp -O 2 -j 2 gen/n000.mc gen/n001.mc 2>/dev/null > o2_par_report.txt
  $ ../bin/aitw.exe -c vcomp -O 2 -j 1 --no-cache gen/n000.mc gen/n001.mc 2>/dev/null > o2_seq_report.txt
  $ cmp o2_seq_report.txt o2_par_report.txt && echo o2-reports-identical
  o2-reports-identical

The WCET engine is selectable (--engine ipet | omt | both; ipet is the
default and keeps the legacy report). In both mode the analyzer
cross-checks the differential oracle omt <= ipet on every function and
prints both bounds:

  $ ../bin/aitw.exe -c o0 --engine both gen/n000.mc 2>/dev/null | grep -c "omt <= ipet holds"
  1
  $ ../bin/aitw.exe -c o0 --engine ipet gen/n000.mc 2>/dev/null | grep -c "engine"
  0
  [1]

Engine runs are deterministic across -j and keep the cached ==
uncached contract (the engine is part of the analysis-cache key, so
engines never share entries):

  $ ../bin/aitw.exe -c vcomp --engine both -j 2 gen/n000.mc gen/n001.mc 2>/dev/null > eng_par_report.txt
  $ ../bin/aitw.exe -c vcomp --engine both -j 1 --no-cache gen/n000.mc gen/n001.mc 2>/dev/null > eng_seq_report.txt
  $ cmp eng_seq_report.txt eng_par_report.txt && echo engine-reports-identical
  engine-reports-identical
  $ ../bin/aitw.exe -c vcomp --engine omt gen/n000.mc 2>/dev/null > omt_report.txt
  $ ../bin/aitw.exe -c vcomp --engine omt --no-cache gen/n000.mc 2>/dev/null > omt_nocache_report.txt
  $ cmp omt_report.txt omt_nocache_report.txt && echo omt-reports-identical
  omt-reports-identical

An unknown engine name is a command-line error before any work runs,
on every tool of the stack:

  $ ../bin/aitw.exe --engine z3 gen/n000.mc 2>/dev/null
  [124]
  $ ../bin/fcc.exe --engine z3 gen/n000.mc 2>/dev/null
  [124]
  $ ../bench/main.exe --engine z3 2>/dev/null
  [124]

Under --engine both the overestimation study gains the per-node
omt/ipet ratio column and the engines aggregate:

  $ ../bench/main.exe -e overestimation -n 4 --engine both 2>/dev/null > overest_both.out
  $ grep -c "omt/ipet" overest_both.out
  1
  $ grep -c "omt <= ipet held on every analysis" overest_both.out
  1
  $ ../bench/main.exe -e overestimation -n 4 2>/dev/null | grep -c "omt/ipet"
  0
  [1]

Streaming mode (--stream, --shard-size implies it) pulls the workload
shard by shard with bounded resident memory; stdout stays
byte-identical to the batch run on every tool, jobs count and shard
size:

  $ ../bench/main.exe -e table1 -n 8 --stream --shard-size 3 -j 2 2>/dev/null > stream_table.out
  $ cmp seq_table.out stream_table.out && echo tables-identical
  tables-identical
  $ ../bin/fcc.exe -c vcomp --stream --shard-size 1 -j 2 gen/n000.mc gen/n001.mc 2>/dev/null > stream_multi.s
  $ cmp seq_multi.s stream_multi.s && echo asm-identical
  asm-identical

Failure containment and --fail-fast hold in streaming shape, survivors
and emission prefix byte-identical to batch:

  $ ../bin/fcc.exe -c vcomp --stream --shard-size 2 -j 2 gen/n000.mc bad.mc gen/n001.mc > stream_partial.s 2> stream_partial_diag.txt
  [1]
  $ cmp seq_multi.s stream_partial.s && echo survivors-identical
  survivors-identical
  $ grep -c "1/3 nodes failed (2 ok)" stream_partial_diag.txt
  1
  $ ../bin/fcc.exe -c vcomp --fail-fast --stream --shard-size 1 gen/n000.mc bad.mc gen/n001.mc > stream_ff.s 2>/dev/null
  [2]
  $ cmp n000.s stream_ff.s && echo only-first-file-emitted
  only-first-file-emitted

One leg of the scaling study (-e scale-leg) emits a single JSON object
with the leg's wall clock, peak RSS and throughput; its WCET total is
the cross-leg determinism witness:

  $ ../bench/main.exe -e scale-leg -n 4 --stream --shard-size 2 2>/dev/null > scale_leg.json
  $ grep -c '"peak_rss_kb"' scale_leg.json
  1
  $ ../bench/main.exe -e scale-leg -n 4 -j 2 2>/dev/null | grep -o '"wcet_total_cycles": [0-9]*' > batch_wcet.txt
  $ grep -o '"wcet_total_cycles": [0-9]*' scale_leg.json > stream_wcet.txt
  $ cmp batch_wcet.txt stream_wcet.txt && echo wcet-totals-identical
  wcet-totals-identical

An unknown compiler name is a command-line error before any work runs,
on both clients (the name<->variant map lives on the request surface):

  $ ../bin/fcc.exe -c gcc gen/n000.mc 2>/dev/null
  [124]
  $ ../bin/aitw.exe -c gcc gen/n000.mc 2>/dev/null
  [124]

The stack serves: fcd owns one warm analysis session behind a
Unix-domain socket, and fcc/aitw become thin clients of it with
--connect. Served answers are byte-identical to the batch runs above
— on stdout and on the per-pass stderr accounting — and a repeated
analysis is answered from the warm cache (0 misses in the daemon's
per-request accounting). --max-requests gives the daemon a
deterministic lifetime, so the test needs no PID management:

  $ ../bin/fcd.exe --socket fcd.sock --cache-dir servecache --max-requests 4 2> fcd.err &
  $ i=0; while ! test -S fcd.sock && test $i -lt 100; do sleep 0.1; i=$((i+1)); done
  $ ../bin/fcc.exe -c vcomp --connect fcd.sock gen/n000.mc gen/n001.mc > served_multi.s
  pass constprop    0 rewritten,    0 removed,    0 hoisted
  pass cse          9 rewritten,    0 removed,    0 hoisted
  pass gvn         11 rewritten,    0 removed,    0 hoisted
  pass licm         0 rewritten,    0 removed,    0 hoisted
  pass deadcode     0 rewritten,    1 removed,    0 hoisted
  $ cmp seq_multi.s served_multi.s && echo served-asm-identical
  served-asm-identical
  $ ../bin/aitw.exe -c vcomp --connect fcd.sock gen/n000.mc > served_cold.txt
  $ ../bin/aitw.exe -c vcomp --connect fcd.sock gen/n000.mc > served_warm.txt
  $ wait
  $ cmp served_cold.txt served_warm.txt && echo served-warm-identical
  served-warm-identical
  $ cmp nocache_report.txt served_warm.txt && echo served-equals-batch
  served-equals-batch
  $ grep -Ec "fcd: req 4 analyze .* ok \| [1-9][0-9]* memory hits, 0 disk hits, 0 misses" fcd.err
  1
  $ grep -c "fcd: served 4 request(s)" fcd.err
  1

A malformed frame on a --stdio connection is refused with an err
frame; the daemon exits cleanly at EOF:

  $ printf 'fcd1 nonsense 0\n' | ../bin/fcd.exe --stdio > frames.out 2> stdio.err
  $ head -1 frames.out
  fcd1 err 29
  $ grep -c "unknown frame kind" frames.out
  1
  $ grep -c "fcd: served 0 request(s)" stdio.err
  1

fcd --ping is the supervisor liveness probe: one line of session stats
on stdout, exit 0. A probe runs no toolchain work and does not consume
the --max-requests budget, so the daemon still serves its request:

  $ ../bin/fcd.exe --socket psock.sock --max-requests 1 2> pfcd.err &
  $ i=0; while ! test -S psock.sock && test $i -lt 100; do sleep 0.1; i=$((i+1)); done
  $ ../bin/fcd.exe --ping psock.sock
  pong served=0 jobs=1 cache=memory
  $ ../bin/aitw.exe -c vcomp --connect psock.sock gen/n000.mc > /dev/null
  $ wait
  $ grep -c "fcd: served 1 request(s)" pfcd.err
  1

Pinging a dead socket is a plain failure, exit 1:

  $ ../bin/fcd.exe --ping psock.sock 2>/dev/null
  [1]

Deadlines are data: an already-expired deadline is refused with a
deadline diagnostic (exit 2, stdout untouched), and a generous one
changes no byte of the report:

  $ ../bin/aitw.exe -c vcomp --deadline-ms 0 gen/n000.mc > dl.txt 2> dl.err
  [2]
  $ test -s dl.txt || echo stdout-empty
  stdout-empty
  $ grep -q "deadline expired" dl.err && echo deadline-diagnosed
  deadline-diagnosed
  $ ../bin/aitw.exe -c vcomp --deadline-ms 600000 gen/n000.mc 2>/dev/null > dl_gen.txt
  $ cmp nocache_report.txt dl_gen.txt && echo deadline-identical
  deadline-identical

Client resilience: against a daemon that dies after one request, the
second request retries on transport failure and then (--fallback-local)
degrades to in-process execution — stdout stays byte-identical to the
batch run, stderr carries the cumulative retry accounting:

  $ ../bin/fcd.exe --socket rsock.sock --max-requests 1 2> rfcd.err &
  $ i=0; while ! test -S rsock.sock && test $i -lt 100; do sleep 0.1; i=$((i+1)); done
  $ ../bin/fcc.exe -c vcomp --connect rsock.sock --fallback-local --retries 2 --retry-base-ms 1 gen/n000.mc gen/n001.mc > resil_multi.s 2> resil.err
  $ wait
  $ cmp seq_multi.s resil_multi.s && echo resilient-asm-identical
  resilient-asm-identical
  $ grep -c "falling back to local execution" resil.err
  1
  $ grep -c "fcc: retried 1 request(s) (1 extra attempt(s))" resil.err
  1

With no daemon at all, --fallback-local degrades every request and the
output is still byte-identical to the batch run:

  $ ../bin/aitw.exe -c vcomp --connect nosuch.sock --fallback-local --retries 1 gen/n000.mc > fallback_report.txt 2> fallback.err
  $ cmp nocache_report.txt fallback_report.txt && echo fallback-identical
  fallback-identical
  $ grep -c "falling back to local execution" fallback.err
  1

while without it an unreachable daemon is an up-front failure:

  $ ../bin/aitw.exe -c vcomp --connect nosuch.sock gen/n000.mc 2>/dev/null
  [2]
