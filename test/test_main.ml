let () =
  Alcotest.run "vericomp"
    [ ("minic", Test_minic.suite); ("target", Test_target.suite); ("vcomp", Test_vcomp.suite); ("cotsc", Test_cotsc.suite); ("scade", Test_scade.suite); ("wcet", Test_wcet.suite); ("memo", Test_memo.suite); ("store", Test_store.suite); ("fcstack", Test_fcstack.suite); ("par", Test_par.suite); ("chaos", Test_chaos.suite); ("smt", Test_smt.suite); ("service", Test_service.suite); ("retry", Test_retry.suite) ]
