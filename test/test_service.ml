(* Service-layer tests: the request/response/diag wire codecs
   round-trip exactly, the CLI name<->variant maps round-trip
   (qcheck-pinned, per the Chain.compiler_of_string deprecation), a
   served request is byte-identical to a cold batch run of the same
   request (serve == batch), a warm repeat answers from memory with
   zero misses (warm == cold), and the framed serve loop contains
   malformed input per the protocol contract: a bad *frame* poisons
   the stream, a bad *request* costs only itself. *)

module F = Fcstack

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let qcheck = QCheck_alcotest.to_alcotest

(* ---- deterministic random values (no QCheck shrinking needed:
   every value is a pure function of the seed) ----------------------- *)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let all_compilers =
  [ F.Request.Cdefault_o0; Cdefault_o1; Cdefault_o2; Cvcomp ]

let all_engines = [ Wcet.Report.Ipet; Omt; Both ]

let all_stages =
  [ F.Diag.Parse; Typecheck; Compile; Layout; Sim; Wcet; Cache; Deadline;
    Transport ]

let contains (s : string) (sub : string) : bool =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* strings with every byte value, newlines, '=', '%': the codecs must
   survive arbitrary bytes in names, sources, notes and contexts *)
let random_bytes rng maxlen =
  let n = Random.State.int rng (maxlen + 1) in
  String.init n (fun _ -> Char.chr (Random.State.int rng 256))

let random_passes rng =
  let b () = Random.State.bool rng in
  { Vcomp.Pass.opt_constprop = b ();
    opt_cse = b ();
    opt_gvn = b ();
    opt_licm = b ();
    opt_deadcode = b ();
    opt_validate = b ();
    opt_fuel =
      pick rng [ Vcomp.Pass.default_fuel; 1; 50 ] }

let random_opts rng =
  { F.Toolchain.ro_compiler = pick rng all_compilers;
    ro_worlds = pick rng [ None; Some 1; Some 8 ];
    ro_sim_fuel = pick rng [ None; Some 5000 ];
    ro_analysis_fuel =
      pick rng
        [ Wcet.Fuel.default;
          { Wcet.Fuel.default with fl_widen = 17; fl_omt = 3 } ];
    ro_passes = random_passes rng;
    ro_engine = pick rng all_engines }

let random_action rng =
  match Random.State.int rng 5 with
  | 0 -> F.Request.Ping
  | 1 | 2 -> F.Request.Compile { ac_dump_rtl = Random.State.bool rng }
  | _ ->
    F.Request.Analyze
      { an_compare = Random.State.bool rng;
        an_simulate = Random.State.bool rng;
        an_annot =
          pick rng [ None; Some "out dir/node.annot"; Some "a=b%c\nd" ] }

let random_request rng =
  F.Request.make
    ~name:("n" ^ random_bytes rng 24)
    ~action:(random_action rng)
    ~opts:(random_opts rng)
    ~validate:(Random.State.bool rng)
    ~exact:(Random.State.bool rng)
    ?deadline_ms:(pick rng [ None; None; Some 0; Some 250; Some 600_000 ])
    (random_bytes rng 200)

let random_diag rng =
  F.Diag.make
    ~severity:(if Random.State.bool rng then F.Diag.Error else Warning)
    ~context:
      (List.init (Random.State.int rng 3) (fun i ->
           (Printf.sprintf "k%d" i, random_bytes rng 16)))
    ~node:("n" ^ random_bytes rng 16)
    ~stage:(pick rng all_stages)
    (random_bytes rng 60)

let random_stats rng =
  { Vcomp.Pass.st_pass = pick rng [ "constprop"; "gvn-cse"; "licm" ];
    st_enabled = Random.State.bool rng;
    st_rewrites = Random.State.int rng 100;
    st_removed = Random.State.int rng 100;
    st_hoisted = Random.State.int rng 100;
    (* %h hex floats must round-trip any finite double exactly *)
    st_ms = pick rng [ 0.0; 0.1; 1e-9; 123.456; Random.State.float rng 1e3 ] }

let random_response rng =
  { F.Response.rs_status =
      pick rng [ F.Response.Sok; Srefused; Sbusy; Stransport ];
    rs_rtl = random_bytes rng 80;
    rs_output = random_bytes rng 200;
    rs_notes = random_bytes rng 80;
    rs_annot = (if Random.State.bool rng then None else Some (random_bytes rng 80));
    rs_pass_stats = List.init (Random.State.int rng 3) (fun _ -> random_stats rng);
    rs_diags = List.init (Random.State.int rng 3) (fun _ -> random_diag rng) }

(* ---- name<->variant maps (satellite: Chain.compiler_of_string is
   deprecated in favor of these, so pin the round-trip) -------------- *)

let compiler_roundtrip =
  QCheck.Test.make ~count:50 ~name:"request: compiler name round-trip"
    (QCheck.oneofl all_compilers)
    (fun c ->
       F.Request.compiler_of_string (F.Request.compiler_to_string c) = Ok c)

let engine_roundtrip =
  QCheck.Test.make ~count:50 ~name:"request: engine name round-trip"
    (QCheck.oneofl all_engines)
    (fun e ->
       F.Request.engine_of_string (F.Request.engine_to_string e) = Ok e)

let test_compiler_names () =
  (* long names stay accepted; unknown names are data, not crashes *)
  List.iter
    (fun (s, c) -> checkb s true (F.Request.compiler_of_string s = Ok c))
    [ ("default-O0", F.Request.Cdefault_o0);
      ("default-O1", Cdefault_o1);
      ("default-O2", Cdefault_o2);
      ("vcomp", Cvcomp) ];
  checkb "bad compiler name is an Error" true
    (Result.is_error (F.Request.compiler_of_string "gcc"));
  checkb "bad engine name is an Error" true
    (Result.is_error (F.Request.engine_of_string "z3"))

(* ---- wire codecs --------------------------------------------------- *)

let request_wire_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: request round-trip"
    QCheck.small_int
    (fun seed ->
       let rng = Random.State.make [| seed; 0x5e40 |] in
       let rq = random_request rng in
       F.Request.of_wire (F.Request.to_wire rq) = Ok rq)

let response_wire_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: response round-trip"
    QCheck.small_int
    (fun seed ->
       let rng = Random.State.make [| seed; 0x4e5 |] in
       let rs = random_response rng in
       F.Response.of_wire (F.Response.to_wire rs) = Ok rs)

let diag_wire_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: diag round-trip"
    QCheck.small_int
    (fun seed ->
       let rng = Random.State.make [| seed; 0xd1a |] in
       let d = random_diag rng in
       F.Diag.of_wire (F.Diag.to_wire d) = Ok d)

let test_wire_rejects () =
  (* version/garbage problems are Errors, never exceptions *)
  checkb "empty request payload" true
    (Result.is_error (F.Request.of_wire ""));
  checkb "wrong-version request" true
    (Result.is_error (F.Request.of_wire "v=999\n"));
  checkb "garbage response payload" true
    (Result.is_error (F.Response.of_wire "not a response"));
  checkb "garbage diag line" true
    (Result.is_error (F.Diag.of_wire "not a diag"))

(* ---- serve == batch ------------------------------------------------ *)

(* timings differ run to run; everything else must be byte-identical *)
let strip_ms (r : F.Response.t) : F.Response.t =
  { r with
    F.Response.rs_pass_stats =
      List.map
        (fun s -> { s with Vcomp.Pass.st_ms = 0.0 })
        r.F.Response.rs_pass_stats }

let source_of_seed seed =
  Minic.Pp.program_to_string (Testlib.Gen.gen_program (seed land 0xFF))

let serve_eq_batch =
  QCheck.Test.make ~count:8
    ~name:"service: warm session == fresh batch, and repeat has 0 misses"
    QCheck.small_int
    (fun seed ->
       let rng = Random.State.make [| seed; 0xbeb |] in
       let rq =
         F.Request.make
           ~name:(Printf.sprintf "p%03d.mc" seed)
           ~action:
             (F.Request.Analyze
                { an_compare = false;
                  an_simulate = false;
                  an_annot = None })
           ~opts:
             (F.Toolchain.request_opts
                ~compiler:(pick rng [ F.Request.Cvcomp; Cdefault_o1 ])
                ~engine:(pick rng [ Wcet.Report.Ipet; Omt ])
                ())
           (source_of_seed seed)
       in
       let warm =
         F.Service.create
           ~state:(F.Toolchain.session ~cache:(Wcet.Memo.create ()) ())
           ()
       in
       let cold () = F.Service.run_request (F.Service.create ()) rq in
       let r1 = F.Service.run_request warm rq in
       let before = F.Service.stats warm in
       let r2 = F.Service.run_request warm rq in
       let after = F.Service.stats warm in
       let repeat_misses =
         match (before, after) with
         | Some b, Some a -> a.Wcet.Report.st_misses - b.Wcet.Report.st_misses
         | _ -> -1
       in
       (* byte-identity holds unconditionally; the 0-miss warm repeat
          only applies to answered requests — a refused analysis is
          never cached (pinned in test_chaos), so its repeat re-misses *)
       strip_ms r1 = strip_ms (cold ())
       && strip_ms r2 = strip_ms r1
       && (r1.F.Response.rs_status <> F.Response.Sok || repeat_misses = 0))

let test_refusal_keeps_partial_artifacts () =
  (* a refused compile still carries the artifacts produced before the
     failure — batch fcc prints them, so serve == batch requires it *)
  (* the chaos harness's canonical refusal injection: an unbounded
     volatile-driven loop the analyzer must refuse to bound *)
  let src =
    Minic.Pp.program_to_string
      (F.Chaos.apply_fault F.Chaos.Frefusal (Testlib.Gen.gen_program 3))
  in
  let rq =
    F.Request.make ~name:"refused.mc"
      ~action:(F.Request.Analyze
                 { an_compare = false; an_simulate = false; an_annot = None })
      src
  in
  let r = F.Service.run_request (F.Service.create ()) rq in
  check Alcotest.string "status" "refused"
    (F.Response.status_to_string r.F.Response.rs_status);
  checkb "diags name the node" true
    (List.exists (fun d -> d.F.Diag.d_node = "refused.mc") r.F.Response.rs_diags)

(* ---- the framed serve loop ---------------------------------------- *)

(* run serve_connection over a pair of pipes in its own domain; the
   test plays the client on the other ends *)
let with_connection ?max_requests (f : out_channel -> in_channel -> unit) :
  F.Service.connection_end =
  let r1, w1 = Unix.pipe () (* client -> server *) in
  let r2, w2 = Unix.pipe () (* server -> client *) in
  let s = F.Service.create () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr r1 in
        let oc = Unix.out_channel_of_descr w2 in
        let e = F.Service.serve_connection ?max_requests ~log:false s ic oc in
        (try flush oc with Sys_error _ -> ());
        (try close_out oc with Sys_error _ -> ());
        (try close_in ic with Sys_error _ -> ());
        e)
  in
  let coc = Unix.out_channel_of_descr w1 in
  let cic = Unix.in_channel_of_descr r2 in
  f coc cic;
  (try close_out coc with Sys_error _ -> ());
  let e = Domain.join server in
  (try close_in cic with Sys_error _ -> ());
  e

let simple_request name =
  F.Request.make ~name ~action:(F.Request.Compile { ac_dump_rtl = false })
    (source_of_seed 7)

let read_kind ic =
  match F.Wire.read_frame ic with
  | F.Wire.Frame (kind, _) -> kind
  | F.Wire.Eof -> "<eof>"
  | F.Wire.Bad m -> "<bad: " ^ m ^ ">"

let test_connection_bye () =
  let e =
    with_connection (fun oc ic ->
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "a.mc"));
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "b.mc"));
        F.Wire.write_frame oc ~kind:"bye" "";
        flush oc;
        check Alcotest.string "first answer" "resp" (read_kind ic);
        check Alcotest.string "second answer" "resp" (read_kind ic))
  in
  checkb "bye ends the connection" true (e = F.Service.Cend_eof)

let test_connection_shutdown () =
  let e =
    with_connection (fun oc _ic ->
        F.Wire.write_frame oc ~kind:"shutdown" "";
        flush oc)
  in
  checkb "shutdown is signalled to the accept loop" true
    (e = F.Service.Cend_shutdown)

let test_connection_budget () =
  let e =
    with_connection ~max_requests:1 (fun oc ic ->
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "a.mc"));
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "b.mc"));
        flush oc;
        check Alcotest.string "budgeted answer" "resp" (read_kind ic);
        (* the loop stops before reading the second request *)
        check Alcotest.string "no second answer" "<eof>" (read_kind ic))
  in
  checkb "budget exhaustion is signalled" true (e = F.Service.Cend_budget)

let test_connection_contains_bad_request () =
  (* a well-framed malformed request costs only itself *)
  let e =
    with_connection (fun oc ic ->
        F.Wire.write_frame oc ~kind:"req" "v=999\n";
        F.Wire.write_frame oc ~kind:"nonsense" "";
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "after.mc"));
        F.Wire.write_frame oc ~kind:"bye" "";
        flush oc;
        check Alcotest.string "bad request -> err" "err" (read_kind ic);
        check Alcotest.string "unknown kind -> err" "err" (read_kind ic);
        check Alcotest.string "later request still served" "resp"
          (read_kind ic))
  in
  checkb "stream survives malformed requests" true (e = F.Service.Cend_eof)

let test_connection_poisoned_by_bad_frame () =
  (* a malformed frame (not a malformed request) poisons the stream *)
  let e =
    with_connection (fun oc ic ->
        output_string oc "this is not an fcd1 frame\n";
        flush oc;
        check Alcotest.string "bad frame -> err" "err" (read_kind ic);
        check Alcotest.string "then hangup" "<eof>" (read_kind ic))
  in
  checkb "bad frame ends the connection" true (e = F.Service.Cend_eof)

let test_client_transport_failure_is_data () =
  (* connecting to a nonexistent socket yields a transport response,
     not an exception *)
  match F.Service.Client.connect "/nonexistent/dir/fcd.sock" with
  | Ok _ -> Alcotest.fail "connect to a nonexistent socket succeeded"
  | Error msg ->
    checkb "error says it cannot connect" true
      (String.length msg >= 14 && String.sub msg 0 14 = "cannot connect")

(* ---- ping: the liveness probe ------------------------------------- *)

let ping_request = F.Request.make ~name:"probe" ~action:F.Request.Ping ""

let test_ping () =
  let s = F.Service.create () in
  let pong = F.Service.run_request s ping_request in
  checkb "ping answers ok" true (pong.F.Response.rs_status = F.Response.Sok);
  checkb "pong reports served=0" true
    (contains pong.F.Response.rs_output "pong served=0");
  check Alcotest.int "a probe does not count as served" 0 (F.Service.served s);
  let _ = F.Service.run_request s (simple_request "a.mc") in
  let pong = F.Service.run_request s ping_request in
  checkb "pong counts the real request" true
    (contains pong.F.Response.rs_output "pong served=1");
  check Alcotest.int "the second probe left the counter alone" 1
    (F.Service.served s);
  checkb "pong names the cache flavor" true
    (contains pong.F.Response.rs_output "cache=none")

(* ---- deadlines as data -------------------------------------------- *)

let analyze_request ?deadline_ms name seed =
  F.Request.make ~name
    ~action:(F.Request.Analyze
               { an_compare = false; an_simulate = false; an_annot = None })
    ?deadline_ms (source_of_seed seed)

let test_expired_deadline_is_refused_uncached () =
  let cache = Wcet.Memo.create () in
  let s = F.Service.create ~state:(F.Toolchain.session ~cache ()) () in
  List.iter
    (fun dl ->
       let r =
         F.Service.run_request s (analyze_request ~deadline_ms:dl "late.mc" 5)
       in
       checkb (Printf.sprintf "deadline %d ms is refused" dl) true
         (r.F.Response.rs_status = F.Response.Srefused);
       checkb "a Deadline diag names the node" true
         (List.exists
            (fun d ->
               d.F.Diag.d_stage = F.Diag.Deadline
               && d.F.Diag.d_node = "late.mc"
               && contains d.F.Diag.d_message "deadline expired")
            r.F.Response.rs_diags))
    [ 0; -5 ];
  (* a deadline says when an answer stops being useful, not what it
     is: an expired request must never populate the cache *)
  check Alcotest.int "nothing cached by expired requests" 0
    (Wcet.Memo.length cache)

let test_generous_deadline_is_byte_identical () =
  let plain = analyze_request "dl.mc" 11 in
  let generous = { plain with F.Request.rq_deadline_ms = Some 600_000 } in
  let r1 = F.Service.run_request (F.Service.create ()) plain in
  let r2 = F.Service.run_request (F.Service.create ()) generous in
  checkb "the analysis succeeded" true
    (r1.F.Response.rs_status = F.Response.Sok);
  checkb "a generous deadline changes no byte of the answer" true
    (strip_ms r1 = strip_ms r2)

let test_fuel_deadline_ticks () =
  (* the cancellation plumbing itself: with_deadline installs the
     check, tick polls it, Expired fires the first time it is true,
     and the slot is restored afterwards *)
  let calls = ref 0 in
  let fired =
    try
      Wcet.Fuel.with_deadline
        (fun () ->
           incr calls;
           !calls >= 3)
        (fun () ->
           Wcet.Fuel.tick ();
           Wcet.Fuel.tick ();
           Wcet.Fuel.tick ();
           false)
    with Wcet.Fuel.Expired -> true
  in
  checkb "the third tick fires Expired" true fired;
  check Alcotest.int "the check is polled once per tick" 3 !calls;
  Wcet.Fuel.tick ();
  check Alcotest.int "ticks outside with_deadline are no-ops" 3 !calls

let test_of_exn_maps_expiry_to_deadline_stage () =
  (* Fuel.Expired escaping from deep inside the analyzer must surface
     at the Deadline stage no matter which stage caught it *)
  let d = F.Diag.of_exn ~node:"n.mc" ~stage:F.Diag.Wcet Wcet.Fuel.Expired in
  check Alcotest.string "stage is deadline, not wcet" "deadline"
    (F.Diag.stage_name d.F.Diag.d_stage);
  checkb "the message says the deadline expired" true
    (contains d.F.Diag.d_message "deadline expired")

(* ---- the Unix accept loop: shedding, socket claiming, signals ----- *)

let tmp_sock (name : string) : string =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "fcsvc-%d-%s.sock" (Unix.getpid ()) name)

let connect_retry (path : string) : Unix.file_descr =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if n = 0 then Alcotest.fail "cannot connect to the test daemon"
      else (
        Unix.sleepf 0.02;
        go (n - 1))
  in
  go 250

let test_serve_unix_sheds_past_budget () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let path = tmp_sock "shed" in
  (try Sys.remove path with Sys_error _ -> ());
  let stop = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        F.Service.serve_unix ~log:false
          ~stop:(fun () -> Atomic.get stop)
          ~pending_budget:0 (F.Service.create ()) path)
  in
  checkb "socket appears" true (F.Service.wait_for_path path);
  (* with a zero pending budget EVERY arrival is over budget, so the
     shed is deterministic — no concurrent load needed (the chaos
     kill-under-load leg covers shedding through the aux hook while
     the daemon is parked mid-read on a live connection) *)
  let shed = connect_retry path in
  let rd = F.Wire.fd_reader shed in
  F.Wire.set_read_timeout rd (Some 10.0);
  (match F.Wire.read_frame_fd ~idle_timeout:true rd with
   | F.Wire.Frame ("busy", msg) ->
     checkb "the busy frame names the saturation" true
       (contains msg "saturated")
   | F.Wire.Frame (k, _) -> Alcotest.fail ("expected busy, got " ^ k)
   | F.Wire.Eof -> Alcotest.fail "expected busy, got eof"
   | F.Wire.Bad m -> Alcotest.fail ("expected busy, got bad: " ^ m));
  Unix.close shed;
  (* the Client maps a shed to retryable data — Sbusy, or Stransport
     when the hangup wins the race; never Sok, never a refusal *)
  (match F.Service.Client.connect path with
   | Error e -> Alcotest.fail e
   | Ok c ->
     let r =
       F.Service.Client.request ~timeout_s:10.0 c (simple_request "shed.mc")
     in
     F.Service.Client.close c;
     checkb "a shed request is retryable" true
       (F.Retry.should_retry r.F.Response.rs_status);
     checkb "a shed request is never refused" true
       (r.F.Response.rs_status <> F.Response.Srefused));
  Atomic.set stop true;
  (* one more arrival wakes the select loop so it re-polls [stop];
     the daemon sheds it into our closed fd (contained EPIPE) *)
  let wake = connect_retry path in
  Unix.close wake;
  Domain.join daemon;
  checkb "socket unlinked on stop" true (not (Sys.file_exists path))

let test_stale_socket_is_reclaimed () =
  let path = tmp_sock "stale" in
  (try Sys.remove path with Sys_error _ -> ());
  (* leave a genuinely stale socket file: bound once, never accepting *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  checkb "the stale file exists" true (Sys.file_exists path);
  let daemon =
    Domain.spawn (fun () ->
        F.Service.serve_unix ~log:false ~max_requests:1 (F.Service.create ())
          path)
  in
  (* the connect-probe found no live daemon, unlinked the corpse and
     rebound; connecting may race the rebind, so retry *)
  let rec ask n =
    match F.Service.Client.connect path with
    | Error _ when n > 0 ->
      Unix.sleepf 0.02;
      ask (n - 1)
    | Error e -> Alcotest.fail e
    | Ok c ->
      let r =
        F.Service.Client.request ~timeout_s:60.0 c (simple_request "stale.mc")
      in
      F.Service.Client.close c;
      if F.Retry.should_retry r.F.Response.rs_status && n > 0 then (
        Unix.sleepf 0.02;
        ask (n - 1))
      else r
  in
  let r = ask 250 in
  checkb "served through the reclaimed socket" true
    (r.F.Response.rs_status = F.Response.Sok);
  Domain.join daemon

let test_live_socket_is_never_stolen () =
  let path = tmp_sock "live" in
  (try Sys.remove path with Sys_error _ -> ());
  let stop = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        F.Service.serve_unix ~log:false
          ~stop:(fun () -> Atomic.get stop)
          (F.Service.create ()) path)
  in
  checkb "socket appears" true (F.Service.wait_for_path path);
  (match F.Service.serve_unix ~log:false (F.Service.create ()) path with
   | () -> Alcotest.fail "a second daemon bound over a live one"
   | exception Failure msg ->
     checkb "the refusal names the live daemon" true
       (contains msg "live daemon");
     checkb "the live daemon's socket survives" true (Sys.file_exists path));
  (match F.Service.Client.connect path with
   | Ok c -> F.Service.Client.shutdown c
   | Error e -> Alcotest.fail e);
  Domain.join daemon;
  checkb "socket unlinked on shutdown" true (not (Sys.file_exists path))

let test_fd_reader_survives_signal_storm () =
  (* satellite regression: a signal storm during a dribbled read must
     never surface as a spurious transport failure — every wait in the
     fd reader retries EINTR against its absolute deadline *)
  let saved = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigusr1 saved)
    (fun () ->
       let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       let payload =
         String.init 100_000 (fun i -> Char.chr ((i * 7) land 0xff))
       in
       let raw =
         Printf.sprintf "fcd1 req %d\n" (String.length payload) ^ payload
       in
       let stop_storm = Atomic.make false in
       let pid = Unix.getpid () in
       let storm =
         Domain.spawn (fun () ->
             while not (Atomic.get stop_storm) do
               (try Unix.kill pid Sys.sigusr1 with Unix.Unix_error _ -> ());
               Unix.sleepf 0.0005
             done)
       in
       let writer =
         Domain.spawn (fun () ->
             let bytes = Bytes.of_string raw in
             let n = Bytes.length bytes in
             let pos = ref 0 in
             while !pos < n do
               let chunk = min 997 (n - !pos) in
               (match Unix.write a bytes !pos chunk with
                | wrote -> pos := !pos + wrote
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
               Unix.sleepf 0.001
             done;
             Unix.close a)
       in
       let rd = F.Wire.fd_reader b in
       F.Wire.set_read_timeout rd (Some 30.0);
       let got = F.Wire.read_frame_fd rd in
       Atomic.set stop_storm true;
       Domain.join writer;
       Domain.join storm;
       Unix.close b;
       match got with
       | F.Wire.Frame ("req", p) ->
         checkb "payload intact under the storm" true (p = payload)
       | F.Wire.Frame (k, _) -> Alcotest.fail ("unexpected kind " ^ k)
       | F.Wire.Eof -> Alcotest.fail "eof under the signal storm"
       | F.Wire.Bad m -> Alcotest.fail ("bad frame under the storm: " ^ m))

let suite =
  [ qcheck compiler_roundtrip;
    qcheck engine_roundtrip;
    Alcotest.test_case "request: name maps and rejects" `Quick
      test_compiler_names;
    qcheck request_wire_roundtrip;
    qcheck response_wire_roundtrip;
    qcheck diag_wire_roundtrip;
    Alcotest.test_case "wire: malformed payloads are Errors" `Quick
      test_wire_rejects;
    qcheck serve_eq_batch;
    Alcotest.test_case "service: refusal keeps partial artifacts" `Quick
      test_refusal_keeps_partial_artifacts;
    Alcotest.test_case "serve: bye ends the connection" `Quick
      test_connection_bye;
    Alcotest.test_case "serve: shutdown frame" `Quick
      test_connection_shutdown;
    Alcotest.test_case "serve: request budget" `Quick test_connection_budget;
    Alcotest.test_case "serve: malformed request costs only itself" `Quick
      test_connection_contains_bad_request;
    Alcotest.test_case "serve: malformed frame poisons the stream" `Quick
      test_connection_poisoned_by_bad_frame;
    Alcotest.test_case "client: transport failure is data" `Quick
      test_client_transport_failure_is_data;
    Alcotest.test_case "ping: liveness probe leaves the session alone"
      `Quick test_ping;
    Alcotest.test_case "deadline: expired is a refusal, never cached"
      `Quick test_expired_deadline_is_refused_uncached;
    Alcotest.test_case "deadline: a generous one changes no byte" `Quick
      test_generous_deadline_is_byte_identical;
    Alcotest.test_case "deadline: Fuel tick/with_deadline plumbing" `Quick
      test_fuel_deadline_ticks;
    Alcotest.test_case "deadline: Fuel.Expired maps to the Deadline stage"
      `Quick test_of_exn_maps_expiry_to_deadline_stage;
    Alcotest.test_case "serve_unix: arrivals past the budget are shed"
      `Quick test_serve_unix_sheds_past_budget;
    Alcotest.test_case "serve_unix: a stale socket is reclaimed" `Quick
      test_stale_socket_is_reclaimed;
    Alcotest.test_case "serve_unix: a live socket is never stolen" `Quick
      test_live_socket_is_never_stolen;
    Alcotest.test_case "wire: fd reader survives a signal storm" `Quick
      test_fd_reader_survives_signal_storm ]
