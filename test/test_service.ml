(* Service-layer tests: the request/response/diag wire codecs
   round-trip exactly, the CLI name<->variant maps round-trip
   (qcheck-pinned, per the Chain.compiler_of_string deprecation), a
   served request is byte-identical to a cold batch run of the same
   request (serve == batch), a warm repeat answers from memory with
   zero misses (warm == cold), and the framed serve loop contains
   malformed input per the protocol contract: a bad *frame* poisons
   the stream, a bad *request* costs only itself. *)

module F = Fcstack

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let qcheck = QCheck_alcotest.to_alcotest

(* ---- deterministic random values (no QCheck shrinking needed:
   every value is a pure function of the seed) ----------------------- *)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let all_compilers =
  [ F.Request.Cdefault_o0; Cdefault_o1; Cdefault_o2; Cvcomp ]

let all_engines = [ Wcet.Report.Ipet; Omt; Both ]

let all_stages =
  [ F.Diag.Parse; Typecheck; Compile; Layout; Sim; Wcet; Cache; Transport ]

(* strings with every byte value, newlines, '=', '%': the codecs must
   survive arbitrary bytes in names, sources, notes and contexts *)
let random_bytes rng maxlen =
  let n = Random.State.int rng (maxlen + 1) in
  String.init n (fun _ -> Char.chr (Random.State.int rng 256))

let random_passes rng =
  let b () = Random.State.bool rng in
  { Vcomp.Pass.opt_constprop = b ();
    opt_cse = b ();
    opt_gvn = b ();
    opt_licm = b ();
    opt_deadcode = b ();
    opt_validate = b ();
    opt_fuel =
      pick rng [ Vcomp.Pass.default_fuel; 1; 50 ] }

let random_opts rng =
  { F.Toolchain.ro_compiler = pick rng all_compilers;
    ro_worlds = pick rng [ None; Some 1; Some 8 ];
    ro_sim_fuel = pick rng [ None; Some 5000 ];
    ro_analysis_fuel =
      pick rng
        [ Wcet.Fuel.default;
          { Wcet.Fuel.default with fl_widen = 17; fl_omt = 3 } ];
    ro_passes = random_passes rng;
    ro_engine = pick rng all_engines }

let random_action rng =
  if Random.State.bool rng then
    F.Request.Compile { ac_dump_rtl = Random.State.bool rng }
  else
    F.Request.Analyze
      { an_compare = Random.State.bool rng;
        an_simulate = Random.State.bool rng;
        an_annot =
          pick rng [ None; Some "out dir/node.annot"; Some "a=b%c\nd" ] }

let random_request rng =
  F.Request.make
    ~name:("n" ^ random_bytes rng 24)
    ~action:(random_action rng)
    ~opts:(random_opts rng)
    ~validate:(Random.State.bool rng)
    ~exact:(Random.State.bool rng)
    (random_bytes rng 200)

let random_diag rng =
  F.Diag.make
    ~severity:(if Random.State.bool rng then F.Diag.Error else Warning)
    ~context:
      (List.init (Random.State.int rng 3) (fun i ->
           (Printf.sprintf "k%d" i, random_bytes rng 16)))
    ~node:("n" ^ random_bytes rng 16)
    ~stage:(pick rng all_stages)
    (random_bytes rng 60)

let random_stats rng =
  { Vcomp.Pass.st_pass = pick rng [ "constprop"; "gvn-cse"; "licm" ];
    st_enabled = Random.State.bool rng;
    st_rewrites = Random.State.int rng 100;
    st_removed = Random.State.int rng 100;
    st_hoisted = Random.State.int rng 100;
    (* %h hex floats must round-trip any finite double exactly *)
    st_ms = pick rng [ 0.0; 0.1; 1e-9; 123.456; Random.State.float rng 1e3 ] }

let random_response rng =
  { F.Response.rs_status = pick rng [ F.Response.Sok; Srefused; Stransport ];
    rs_rtl = random_bytes rng 80;
    rs_output = random_bytes rng 200;
    rs_notes = random_bytes rng 80;
    rs_annot = (if Random.State.bool rng then None else Some (random_bytes rng 80));
    rs_pass_stats = List.init (Random.State.int rng 3) (fun _ -> random_stats rng);
    rs_diags = List.init (Random.State.int rng 3) (fun _ -> random_diag rng) }

(* ---- name<->variant maps (satellite: Chain.compiler_of_string is
   deprecated in favor of these, so pin the round-trip) -------------- *)

let compiler_roundtrip =
  QCheck.Test.make ~count:50 ~name:"request: compiler name round-trip"
    (QCheck.oneofl all_compilers)
    (fun c ->
       F.Request.compiler_of_string (F.Request.compiler_to_string c) = Ok c)

let engine_roundtrip =
  QCheck.Test.make ~count:50 ~name:"request: engine name round-trip"
    (QCheck.oneofl all_engines)
    (fun e ->
       F.Request.engine_of_string (F.Request.engine_to_string e) = Ok e)

let test_compiler_names () =
  (* long names stay accepted; unknown names are data, not crashes *)
  List.iter
    (fun (s, c) -> checkb s true (F.Request.compiler_of_string s = Ok c))
    [ ("default-O0", F.Request.Cdefault_o0);
      ("default-O1", Cdefault_o1);
      ("default-O2", Cdefault_o2);
      ("vcomp", Cvcomp) ];
  checkb "bad compiler name is an Error" true
    (Result.is_error (F.Request.compiler_of_string "gcc"));
  checkb "bad engine name is an Error" true
    (Result.is_error (F.Request.engine_of_string "z3"))

(* ---- wire codecs --------------------------------------------------- *)

let request_wire_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: request round-trip"
    QCheck.small_int
    (fun seed ->
       let rng = Random.State.make [| seed; 0x5e40 |] in
       let rq = random_request rng in
       F.Request.of_wire (F.Request.to_wire rq) = Ok rq)

let response_wire_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: response round-trip"
    QCheck.small_int
    (fun seed ->
       let rng = Random.State.make [| seed; 0x4e5 |] in
       let rs = random_response rng in
       F.Response.of_wire (F.Response.to_wire rs) = Ok rs)

let diag_wire_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: diag round-trip"
    QCheck.small_int
    (fun seed ->
       let rng = Random.State.make [| seed; 0xd1a |] in
       let d = random_diag rng in
       F.Diag.of_wire (F.Diag.to_wire d) = Ok d)

let test_wire_rejects () =
  (* version/garbage problems are Errors, never exceptions *)
  checkb "empty request payload" true
    (Result.is_error (F.Request.of_wire ""));
  checkb "wrong-version request" true
    (Result.is_error (F.Request.of_wire "v=999\n"));
  checkb "garbage response payload" true
    (Result.is_error (F.Response.of_wire "not a response"));
  checkb "garbage diag line" true
    (Result.is_error (F.Diag.of_wire "not a diag"))

(* ---- serve == batch ------------------------------------------------ *)

(* timings differ run to run; everything else must be byte-identical *)
let strip_ms (r : F.Response.t) : F.Response.t =
  { r with
    F.Response.rs_pass_stats =
      List.map
        (fun s -> { s with Vcomp.Pass.st_ms = 0.0 })
        r.F.Response.rs_pass_stats }

let source_of_seed seed =
  Minic.Pp.program_to_string (Testlib.Gen.gen_program (seed land 0xFF))

let serve_eq_batch =
  QCheck.Test.make ~count:8
    ~name:"service: warm session == fresh batch, and repeat has 0 misses"
    QCheck.small_int
    (fun seed ->
       let rng = Random.State.make [| seed; 0xbeb |] in
       let rq =
         F.Request.make
           ~name:(Printf.sprintf "p%03d.mc" seed)
           ~action:
             (F.Request.Analyze
                { an_compare = false;
                  an_simulate = false;
                  an_annot = None })
           ~opts:
             (F.Toolchain.request_opts
                ~compiler:(pick rng [ F.Request.Cvcomp; Cdefault_o1 ])
                ~engine:(pick rng [ Wcet.Report.Ipet; Omt ])
                ())
           (source_of_seed seed)
       in
       let warm =
         F.Service.create
           ~state:(F.Toolchain.session ~cache:(Wcet.Memo.create ()) ())
           ()
       in
       let cold () = F.Service.run_request (F.Service.create ()) rq in
       let r1 = F.Service.run_request warm rq in
       let before = F.Service.stats warm in
       let r2 = F.Service.run_request warm rq in
       let after = F.Service.stats warm in
       let repeat_misses =
         match (before, after) with
         | Some b, Some a -> a.Wcet.Report.st_misses - b.Wcet.Report.st_misses
         | _ -> -1
       in
       (* byte-identity holds unconditionally; the 0-miss warm repeat
          only applies to answered requests — a refused analysis is
          never cached (pinned in test_chaos), so its repeat re-misses *)
       strip_ms r1 = strip_ms (cold ())
       && strip_ms r2 = strip_ms r1
       && (r1.F.Response.rs_status <> F.Response.Sok || repeat_misses = 0))

let test_refusal_keeps_partial_artifacts () =
  (* a refused compile still carries the artifacts produced before the
     failure — batch fcc prints them, so serve == batch requires it *)
  (* the chaos harness's canonical refusal injection: an unbounded
     volatile-driven loop the analyzer must refuse to bound *)
  let src =
    Minic.Pp.program_to_string
      (F.Chaos.apply_fault F.Chaos.Frefusal (Testlib.Gen.gen_program 3))
  in
  let rq =
    F.Request.make ~name:"refused.mc"
      ~action:(F.Request.Analyze
                 { an_compare = false; an_simulate = false; an_annot = None })
      src
  in
  let r = F.Service.run_request (F.Service.create ()) rq in
  check Alcotest.string "status" "refused"
    (F.Response.status_to_string r.F.Response.rs_status);
  checkb "diags name the node" true
    (List.exists (fun d -> d.F.Diag.d_node = "refused.mc") r.F.Response.rs_diags)

(* ---- the framed serve loop ---------------------------------------- *)

(* run serve_connection over a pair of pipes in its own domain; the
   test plays the client on the other ends *)
let with_connection ?max_requests (f : out_channel -> in_channel -> unit) :
  F.Service.connection_end =
  let r1, w1 = Unix.pipe () (* client -> server *) in
  let r2, w2 = Unix.pipe () (* server -> client *) in
  let s = F.Service.create () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr r1 in
        let oc = Unix.out_channel_of_descr w2 in
        let e = F.Service.serve_connection ?max_requests ~log:false s ic oc in
        (try flush oc with Sys_error _ -> ());
        (try close_out oc with Sys_error _ -> ());
        (try close_in ic with Sys_error _ -> ());
        e)
  in
  let coc = Unix.out_channel_of_descr w1 in
  let cic = Unix.in_channel_of_descr r2 in
  f coc cic;
  (try close_out coc with Sys_error _ -> ());
  let e = Domain.join server in
  (try close_in cic with Sys_error _ -> ());
  e

let simple_request name =
  F.Request.make ~name ~action:(F.Request.Compile { ac_dump_rtl = false })
    (source_of_seed 7)

let read_kind ic =
  match F.Wire.read_frame ic with
  | F.Wire.Frame (kind, _) -> kind
  | F.Wire.Eof -> "<eof>"
  | F.Wire.Bad m -> "<bad: " ^ m ^ ">"

let test_connection_bye () =
  let e =
    with_connection (fun oc ic ->
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "a.mc"));
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "b.mc"));
        F.Wire.write_frame oc ~kind:"bye" "";
        flush oc;
        check Alcotest.string "first answer" "resp" (read_kind ic);
        check Alcotest.string "second answer" "resp" (read_kind ic))
  in
  checkb "bye ends the connection" true (e = F.Service.Cend_eof)

let test_connection_shutdown () =
  let e =
    with_connection (fun oc _ic ->
        F.Wire.write_frame oc ~kind:"shutdown" "";
        flush oc)
  in
  checkb "shutdown is signalled to the accept loop" true
    (e = F.Service.Cend_shutdown)

let test_connection_budget () =
  let e =
    with_connection ~max_requests:1 (fun oc ic ->
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "a.mc"));
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "b.mc"));
        flush oc;
        check Alcotest.string "budgeted answer" "resp" (read_kind ic);
        (* the loop stops before reading the second request *)
        check Alcotest.string "no second answer" "<eof>" (read_kind ic))
  in
  checkb "budget exhaustion is signalled" true (e = F.Service.Cend_budget)

let test_connection_contains_bad_request () =
  (* a well-framed malformed request costs only itself *)
  let e =
    with_connection (fun oc ic ->
        F.Wire.write_frame oc ~kind:"req" "v=999\n";
        F.Wire.write_frame oc ~kind:"nonsense" "";
        F.Wire.write_frame oc ~kind:"req"
          (F.Request.to_wire (simple_request "after.mc"));
        F.Wire.write_frame oc ~kind:"bye" "";
        flush oc;
        check Alcotest.string "bad request -> err" "err" (read_kind ic);
        check Alcotest.string "unknown kind -> err" "err" (read_kind ic);
        check Alcotest.string "later request still served" "resp"
          (read_kind ic))
  in
  checkb "stream survives malformed requests" true (e = F.Service.Cend_eof)

let test_connection_poisoned_by_bad_frame () =
  (* a malformed frame (not a malformed request) poisons the stream *)
  let e =
    with_connection (fun oc ic ->
        output_string oc "this is not an fcd1 frame\n";
        flush oc;
        check Alcotest.string "bad frame -> err" "err" (read_kind ic);
        check Alcotest.string "then hangup" "<eof>" (read_kind ic))
  in
  checkb "bad frame ends the connection" true (e = F.Service.Cend_eof)

let test_client_transport_failure_is_data () =
  (* connecting to a nonexistent socket yields a transport response,
     not an exception *)
  match F.Service.Client.connect "/nonexistent/dir/fcd.sock" with
  | Ok _ -> Alcotest.fail "connect to a nonexistent socket succeeded"
  | Error msg ->
    checkb "error says it cannot connect" true
      (String.length msg >= 14 && String.sub msg 0 14 = "cannot connect")

let suite =
  [ qcheck compiler_roundtrip;
    qcheck engine_roundtrip;
    Alcotest.test_case "request: name maps and rejects" `Quick
      test_compiler_names;
    qcheck request_wire_roundtrip;
    qcheck response_wire_roundtrip;
    qcheck diag_wire_roundtrip;
    Alcotest.test_case "wire: malformed payloads are Errors" `Quick
      test_wire_rejects;
    qcheck serve_eq_batch;
    Alcotest.test_case "service: refusal keeps partial artifacts" `Quick
      test_refusal_keeps_partial_artifacts;
    Alcotest.test_case "serve: bye ends the connection" `Quick
      test_connection_bye;
    Alcotest.test_case "serve: shutdown frame" `Quick
      test_connection_shutdown;
    Alcotest.test_case "serve: request budget" `Quick test_connection_budget;
    Alcotest.test_case "serve: malformed request costs only itself" `Quick
      test_connection_contains_bad_request;
    Alcotest.test_case "serve: malformed frame poisons the stream" `Quick
      test_connection_poisoned_by_bad_frame;
    Alcotest.test_case "client: transport failure is data" `Quick
      test_client_transport_failure_is_data ]
